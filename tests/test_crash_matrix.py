"""Crash matrix: every replication style x every victim role.

A compact sweep asserting the invariant that matters -- after any single
crash, the surviving replicas converge and the client's view stays
continuous -- across the full style set and crash positions.
"""

import pytest

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import Counter

STYLES = [
    ReplicationStyle.ACTIVE,
    ReplicationStyle.WARM_PASSIVE,
    ReplicationStyle.COLD_PASSIVE,
    ReplicationStyle.SEMI_ACTIVE,
]
# Victims: the primary/leader (s1), a backup/follower (s3), and the
# client's own host (which holds no replica).
VICTIMS = ["s1", "s3", "bystander"]


@pytest.mark.parametrize("style", STYLES)
@pytest.mark.parametrize("victim", VICTIMS)
def test_single_crash_convergence(style, victim):
    system = EternalSystem(
        ["s1", "s2", "s3", "bystander", "client"], seed=1
    ).start()
    system.stabilize()
    policy = GroupPolicy(style=style, checkpoint_interval_ops=2)
    ior = system.create_replicated("ctr", Counter, ["s1", "s2", "s3"], policy)
    system.run_for(0.5)
    stub = system.stub("client", ior)

    for expected in range(1, 4):
        assert system.call(stub.increment(1), timeout=60.0) == expected

    system.crash(victim)
    system.stabilize(timeout=15.0)

    for expected in range(4, 7):
        assert system.call(stub.increment(1), timeout=60.0) == expected

    system.run_for(1.0)
    states = system.states_of("ctr")
    survivors = {n for n in ("s1", "s2", "s3") if n != victim}
    assert survivors <= set(states)
    # Cold-passive backups lag by design between checkpoints; every other
    # style must have fully converged survivors.
    if style == ReplicationStyle.COLD_PASSIVE:
        primary = min(survivors)
        assert states[primary] == 6
        assert all(states[node] <= 6 for node in survivors)
    else:
        assert set(states[node] for node in survivors) == {6}


@pytest.mark.parametrize("style", STYLES)
def test_client_host_crash_fails_only_that_client(style):
    """Crashing the node a client runs on must not disturb the group."""
    system = EternalSystem(["s1", "s2", "c1", "c2"], seed=2).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["s1", "s2"], GroupPolicy(style=style)
    )
    system.run_for(0.5)
    stub1 = system.stub("c1", ior)
    stub2 = system.stub("c2", ior)
    assert system.call(stub1.increment(1), timeout=60.0) == 1
    system.crash("c1")
    system.stabilize(timeout=15.0)
    assert system.call(stub2.increment(1), timeout=60.0) == 2
    states = system.states_of("ctr")
    assert states["s1"] == 2 or style == ReplicationStyle.COLD_PASSIVE
