"""Partitioned operation and remerge reconciliation (fulfillment ops)."""

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import Counter, Inventory


def partitioned_system(seed=0, style=ReplicationStyle.ACTIVE):
    system = EternalSystem(["n1", "n2", "n3", "n4"], seed=seed).start()
    system.stabilize()
    ior = system.create_replicated(
        "inv", lambda: Inventory(stock=10), ["n1", "n2", "n3", "n4"],
        GroupPolicy(style=style),
    )
    system.run_for(0.5)
    return system, ior


def test_both_components_continue_serving():
    system, ior = partitioned_system()
    system.partition([("n1", "n2"), ("n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    left = system.stub("n1", ior)
    right = system.stub("n3", ior)
    assert system.call(left.sell("L1"), timeout=60.0)["status"] == "shipped"
    assert system.call(right.sell("R1"), timeout=60.0)["status"] == "shipped"
    # Divergence is real: each component applied only its own sale.
    assert system.replicas_of("inv")["n1"].servant.stock == 9
    assert system.replicas_of("inv")["n3"].servant.stock == 9


def test_remerge_reconciles_with_fulfillment_operations():
    system, ior = partitioned_system()
    system.partition([("n1", "n2"), ("n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    left = system.stub("n1", ior)
    right = system.stub("n3", ior)
    for i in range(2):
        system.call(left.sell("L%d" % i), timeout=60.0)
    for i in range(3):
        system.call(right.sell("R%d" % i), timeout=60.0)
    system.merge()
    system.stabilize(timeout=10.0)
    system.run_for(3.0)
    # All five sales must be reflected in the merged state: the primary
    # component's two directly, the secondary's three via fulfillment.
    states = system.states_of("inv")
    stocks = {node: s["stock"] for node, s in states.items()}
    assert set(stocks.values()) == {5}, stocks
    shipped = {node: sorted(s["shipping_orders"]) for node, s in states.items()}
    reference = shipped["n1"]
    assert sorted(reference) == ["L0", "L1", "R0", "R1", "R2"]
    assert all(orders == reference for orders in shipped.values())


def test_fulfillment_handles_application_conflict():
    """Oversell across the partition: the merged state must reflect the
    back-order path of the fulfillment operation, not silent loss."""
    system = EternalSystem(["n1", "n2", "n3", "n4"]).start()
    system.stabilize()
    ior = system.create_replicated(
        "inv", lambda: Inventory(stock=1), ["n1", "n2", "n3", "n4"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    system.partition([("n1", "n2"), ("n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    # Both components sell the last car.
    assert system.call(system.stub("n1", ior).sell("L"), timeout=60.0)["status"] == "shipped"
    assert system.call(system.stub("n3", ior).sell("R"), timeout=60.0)["status"] == "shipped"
    system.merge()
    system.stabilize(timeout=10.0)
    system.run_for(3.0)
    states = system.states_of("inv")
    for state in states.values():
        assert state["stock"] == 0
        assert state["shipping_orders"] == ["L"]
        # The secondary component's sale became a back order at remerge.
        assert state["back_orders"] == ["R"]


def test_merged_group_consistent_and_serving_afterwards():
    system, ior = partitioned_system(seed=7)
    system.partition([("n1", "n2"), ("n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    system.call(system.stub("n3", ior).sell("X"), timeout=60.0)
    system.merge()
    system.stabilize(timeout=10.0)
    system.run_for(3.0)
    result = system.call(system.stub("n4", ior).sell("Y"), timeout=60.0)
    assert result["status"] == "shipped"
    states = system.states_of("inv")
    assert set(s["stock"] for s in states.values()) == {8}
    for s in states.values():
        assert sorted(s["shipping_orders"]) == ["X", "Y"]


def test_counter_partition_merge_preserves_all_increments():
    system = EternalSystem(["n1", "n2", "n3", "n4"]).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3", "n4"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    system.partition([("n1", "n2"), ("n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    for _ in range(3):
        system.call(system.stub("n1", ior).increment(1), timeout=60.0)
    for _ in range(4):
        system.call(system.stub("n3", ior).increment(1), timeout=60.0)
    system.merge()
    system.stabilize(timeout=10.0)
    system.run_for(3.0)
    assert set(system.states_of("ctr").values()) == {7}
