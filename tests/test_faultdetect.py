"""Tests for heartbeat fault detection, notification, and recovery."""

from repro.core import EternalSystem
from repro.faultdetect import FaultNotifier
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import Simulator
from repro.workloads import Counter


def managed_system(spares=("spare",), nodes=("n1", "n2", "n3", "spare"),
                   interval=0.05, seed=0):
    system = EternalSystem(list(nodes), seed=seed).start()
    system.stabilize()
    system.enable_fault_management(
        "n1", interval=interval, miss_threshold=2, spares=spares
    )
    return system


def test_no_false_positives_on_healthy_cluster():
    system = managed_system()
    system.run_for(2.0)
    assert system.detector.suspected() == []
    assert system.notifier.history == []


def test_crash_detected_within_expected_latency():
    system = managed_system(interval=0.05)
    system.run_for(0.5)
    crash_time = system.sim.now
    system.crash("n3")
    system.run_for(2.0)
    assert "n3" in system.detector.suspected()
    report = system.notifier.history[0]
    assert report.target == "n3"
    detection_latency = report.detected_at - crash_time
    # With interval 0.05 and 2 misses, detection should land within a few
    # heartbeat periods.
    assert 0.0 < detection_latency < 0.5


def test_detection_latency_scales_with_interval():
    def latency(interval, seed):
        system = managed_system(interval=interval, seed=seed)
        system.run_for(1.0)
        crash_time = system.sim.now
        system.crash("n3")
        system.run_for(30 * interval + 5.0)
        assert system.notifier.history, "fault not detected"
        return system.notifier.history[0].detected_at - crash_time

    fast = latency(0.02, seed=1)
    slow = latency(0.5, seed=1)
    assert slow > fast


def test_notifier_deduplicates_open_faults():
    sim = Simulator()
    notifier = FaultNotifier(sim)
    seen = []
    notifier.subscribe(seen.append)
    assert notifier.report("n9", 1.0) is not None
    assert notifier.report("n9", 2.0) is None
    assert len(seen) == 1
    notifier.clear("n9")
    assert notifier.report("n9", 3.0) is not None
    assert len(seen) == 2


def test_recovery_restores_replication_degree():
    system = managed_system()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE, min_replicas=3),
    )
    system.run_for(0.5)
    stub = system.stub("n1", ior)
    system.call(stub.increment(5))
    system.crash("n3")
    system.run_for(3.0)  # detection + re-instantiation + state transfer
    system.stabilize()
    system.run_for(1.0)
    # The spare was recruited and initialized with the current state.
    assert system.coordinator.placements_for("ctr") == ["spare"]
    replica = system.replicas_of("ctr")["spare"]
    assert replica.ready
    assert replica.servant.value == 5
    # And it participates in new operations.
    system.call(stub.increment(1))
    system.run_for(0.5)
    assert replica.servant.value == 6


def test_recovery_skips_groups_still_at_degree():
    system = managed_system()
    system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE, min_replicas=2),
    )
    system.run_for(0.5)
    system.crash("n3")
    system.run_for(3.0)
    # Two replicas remain, which satisfies min_replicas=2: no placement.
    assert system.coordinator.placements == []


def test_monitorable_counts_pings():
    system = managed_system(interval=0.05)
    system.run_for(1.0)
    # All monitored nodes were pinged repeatedly.
    monitorable = system.nodes["n2"].orb.poa.servant("ft/monitorable")
    assert monitorable.pings > 10
