"""Totem protocol behaviour under loss, token faults, and merge timing."""

from repro.simnet import LinkProfile
from repro.totem import TotemCluster, TotemConfig
from repro.totem.events import RegularConfiguration


def app_payloads(cluster, node_id):
    return [
        d.payload for d in cluster.deliveries[node_id]
        if not (isinstance(d.payload, tuple) and d.payload
                and d.payload[0] == "announce")
    ]


def test_token_retransmission_recovers_lost_token():
    # 10% loss: tokens are regularly dropped; retransmission must keep the
    # ring alive without constant membership churn.
    cluster = TotemCluster(
        ["n1", "n2", "n3"], seed=21, profile=LinkProfile(loss=0.10)
    ).start()
    cluster.run_until_stable(timeout=10.0)
    for i in range(30):
        cluster.processors["n1"].send(("m", i))
    cluster.sim.run_for(10.0)
    assert app_payloads(cluster, "n3") == [("m", i) for i in range(30)]
    assert cluster.sim.trace.count("totem.token.retransmit") > 0


def test_data_retransmission_requests_served():
    cluster = TotemCluster(
        ["n1", "n2", "n3"], seed=4, profile=LinkProfile(loss=0.15)
    ).start()
    cluster.run_until_stable(timeout=10.0)
    for i in range(60):
        cluster.processors["n2"].send(("d", i), size=256)
    cluster.sim.run_for(15.0)
    for node in ("n1", "n2", "n3"):
        assert app_payloads(cluster, node) == [("d", i) for i in range(60)]


def test_safe_messages_survive_loss():
    cluster = TotemCluster(
        ["n1", "n2", "n3"], seed=8, profile=LinkProfile(loss=0.08)
    ).start()
    cluster.run_until_stable(timeout=10.0)
    for i in range(20):
        cluster.processors["n3"].send(("s", i), guarantee="safe")
    cluster.sim.run_for(10.0)
    for node in ("n1", "n2", "n3"):
        assert app_payloads(cluster, node) == [("s", i) for i in range(20)]


def test_merge_detected_via_beacon_within_interval():
    config = TotemConfig(beacon_interval=0.05)
    cluster = TotemCluster(["n1", "n2", "n3", "n4"], config=config).start()
    cluster.run_until_stable(timeout=5.0)
    cluster.net.partition([("n1", "n2"), ("n3", "n4")])
    cluster.run_until_stable(timeout=5.0)
    merge_time = cluster.sim.now
    cluster.net.merge()
    cluster.run_until_stable(timeout=5.0)
    # Detection cannot beat the beacon; convergence lands within a small
    # number of beacon intervals plus the membership exchange.
    elapsed = cluster.sim.now - merge_time
    assert 0.0 < elapsed < 20 * config.beacon_interval


def test_ring_ids_strictly_increase():
    cluster = TotemCluster(["n1", "n2", "n3"]).start()
    cluster.run_until_stable(timeout=5.0)
    cluster.net.node("n3").crash()
    cluster.run_until_stable(timeout=5.0)
    cluster.net.node("n3").recover()
    cluster.run_until_stable(timeout=5.0)
    seqs = [
        e.ring_key[0] for e in cluster.configs["n1"]
        if isinstance(e, RegularConfiguration)
    ]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_garbage_collection_bounds_store():
    cluster = TotemCluster(["n1", "n2"]).start()
    cluster.run_until_stable(timeout=5.0)
    for i in range(2000):
        cluster.processors["n1"].send(i, size=16)
    cluster.sim.run_for(10.0)
    # Everything delivered and safe: the stores must have been collected.
    for processor in cluster.processors.values():
        assert len(processor.store.received) < 200


def test_evs_invariants_hold_under_extreme_loss():
    """At 20% loss the ring churns; extended virtual synchrony does NOT
    promise completeness across configurations a member missed -- the
    end-to-end guarantee belongs to the replication layer's retries.  What
    must still hold: no duplicates, and all messages delivered at two
    members appear in the same relative order."""
    cluster = TotemCluster(
        ["n1", "n2", "n3", "n4"], seed=99, profile=LinkProfile(loss=0.2)
    ).start()
    cluster.run_until_stable(timeout=20.0)
    for i in range(40):
        sender = ["n1", "n2", "n3", "n4"][i % 4]
        cluster.processors[sender].send((sender, i))
    cluster.sim.run_for(30.0)
    sequences = {n: app_payloads(cluster, n) for n in ("n1", "n2", "n3", "n4")}
    for node, sequence in sequences.items():
        assert len(sequence) == len(set(sequence)), "duplicate at %s" % node
    nodes = list(sequences)
    for a in nodes:
        for b in nodes:
            if a >= b:
                continue
            common_a = [m for m in sequences[a] if m in sequences[b]]
            common_b = [m for m in sequences[b] if m in sequences[a]]
            assert common_a == common_b, "order disagreement %s vs %s" % (a, b)


def test_queue_depth_visible_and_drains():
    config = TotemConfig(window=2)
    cluster = TotemCluster(["n1", "n2"], config=config).start()
    cluster.run_until_stable(timeout=5.0)
    for i in range(50):
        cluster.processors["n1"].send(i)
    assert cluster.processors["n1"].queue_depth > 0
    cluster.sim.run_for(5.0)
    assert cluster.processors["n1"].queue_depth == 0
    assert app_payloads(cluster, "n2") == list(range(50))
