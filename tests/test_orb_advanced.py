"""Advanced ORB behaviours: IOGR profile failover, LOCATION_FORWARD,
transport internals, and hierarchical fault detection."""

import pytest

from repro.faultdetect import HierarchicalFaultDetector, PullMonitorable
from repro.orb import ORB, CommFailure
from repro.orb.exceptions import ForwardRequest
from repro.orb.idl import Servant, operation
from repro.orb.ior import IOR, IIOPProfile
from repro.orb.orb_core import wait_for
from repro.simnet import LinkProfile, Network, Simulator
from repro.workloads import Counter


def build(node_ids, profile=None, seed=0):
    sim = Simulator(seed=seed)
    net = Network(sim, profile=profile)
    orbs = {node_id: ORB(net, net.add_node(node_id)) for node_id in node_ids}
    return sim, net, orbs


# ----------------------------------------------------------------------
# IOGR-style multi-profile failover
# ----------------------------------------------------------------------

def test_multi_profile_reference_fails_over():
    sim, net, orbs = build(["a", "b", "client"])
    servant_a = Counter(100)
    servant_b = Counter(200)
    ior_a = orbs["a"].poa.activate(servant_a, object_key="ctr")
    orbs["b"].poa.activate(servant_b, object_key="ctr")
    iogr = IOR(ior_a.type_id, [
        IIOPProfile("a", 683, "ctr"),
        IIOPProfile("b", 683, "ctr"),
    ])
    net.node("a").crash()
    stub = orbs["client"].stub(iogr)
    # The first profile's host is dead: the request lands at b.
    assert wait_for(sim, stub.read(), timeout=20.0) == 200
    assert sim.trace.count("orb.profile.failover") >= 1


def test_multi_profile_all_dead_fails():
    sim, net, orbs = build(["a", "b", "client"])
    orbs["a"].poa.activate(Counter(), object_key="ctr")
    iogr = IOR("IDL:Counter:1.0", [
        IIOPProfile("a", 683, "ctr"),
        IIOPProfile("b", 683, "nope"),  # b never activated the key
    ])
    net.node("a").crash()
    net.node("b").crash()
    future = orbs["client"].stub(iogr).read()
    sim.run_for(15.0)
    assert future.done()
    assert future.exception() is not None


# ----------------------------------------------------------------------
# LOCATION_FORWARD
# ----------------------------------------------------------------------

class Redirector(Servant):
    """Forwards every call to another reference (CORBA relocation)."""

    def __init__(self, target_ior_string):
        self.target = target_ior_string

    @operation()
    def read(self):
        raise ForwardRequest(self.target)

    @operation()
    def increment(self, amount=1):
        raise ForwardRequest(self.target)


def test_location_forward_transparent_to_client():
    sim, net, orbs = build(["old", "new", "client"])
    real_ior = orbs["new"].poa.activate(Counter(7))
    orbs["old"].poa.activate(Redirector(real_ior.to_string()), object_key="ctr")
    old_ior = IOR(real_ior.type_id, [IIOPProfile("old", 683, "ctr")])
    stub = orbs["client"].stub(old_ior)
    assert wait_for(sim, stub.read()) == 7
    assert wait_for(sim, stub.increment(3)) == 10
    assert sim.trace.count("orb.forwarded") == 2


def test_forward_preserves_arguments():
    sim, net, orbs = build(["old", "new", "client"])
    real_ior = orbs["new"].poa.activate(Counter(0))
    orbs["old"].poa.activate(Redirector(real_ior.to_string()), object_key="ctr")
    old_ior = IOR(real_ior.type_id, [IIOPProfile("old", 683, "ctr")])
    assert wait_for(sim, orbs["client"].stub(old_ior).increment(42)) == 42


# ----------------------------------------------------------------------
# Transport internals
# ----------------------------------------------------------------------

def test_transport_retransmits_under_loss():
    sim, net, orbs = build(["s", "c"], profile=LinkProfile(loss=0.1), seed=3)
    ior = orbs["s"].poa.activate(Counter())
    stub = orbs["c"].stub(ior)
    for expected in range(1, 21):
        assert wait_for(sim, stub.increment(1), timeout=30.0) == expected
    assert sim.trace.count("tcp.retransmit") > 0


def test_connect_to_nonlistening_port_times_out():
    sim, net, orbs = build(["s", "c"])
    errors = []
    orbs["c"].transport.connect("s", 9999, lambda conn: None, errors.append)
    sim.run_for(2.0)
    assert len(errors) == 1
    assert isinstance(errors[0], CommFailure)


def test_orderly_close_notifies_peer_without_error():
    sim, net, orbs = build(["s", "c"])
    closed = []
    accepted = []
    orbs["s"].transport.listen(7000, accepted.append)
    conn_holder = []

    def connected(conn):
        conn.on_close = lambda c, err: closed.append(("client", err))
        conn_holder.append(conn)

    orbs["c"].transport.connect("s", 7000, connected)
    sim.run_for(0.5)
    assert accepted and conn_holder
    server_conn = accepted[0]
    server_conn.on_close = lambda c, err: closed.append(("server", err))
    conn_holder[0].close()
    sim.run_for(0.5)
    assert ("server", None) in closed


def test_send_before_handshake_is_buffered():
    sim, net, orbs = build(["s", "c"])
    received = []
    orbs["s"].transport.listen(7000, lambda conn: setattr(
        conn, "on_message", lambda c, data: received.append(bytes(data))
    ))
    conn = orbs["c"].transport.connect("s", 7000, lambda c: None)
    conn.send(b"early")  # handshake not complete yet
    sim.run_for(0.5)
    assert received == [b"early"]


def test_send_on_closed_connection_raises():
    sim, net, orbs = build(["s", "c"])
    orbs["s"].transport.listen(7000, lambda conn: None)
    conn = orbs["c"].transport.connect("s", 7000, lambda c: None)
    sim.run_for(0.5)
    conn.close()
    with pytest.raises(CommFailure):
        conn.send(b"late")


# ----------------------------------------------------------------------
# Hierarchical fault detection
# ----------------------------------------------------------------------

def test_hierarchical_detector_fans_out_host_faults():
    sim, net, orbs = build(["h1", "h2", "global"])
    faults = []
    detector = HierarchicalFaultDetector(
        orbs["global"], interval=0.05,
        on_fault=lambda name, when: faults.append(name),
    )
    for host in ("h1", "h2"):
        ior = orbs[host].poa.activate(
            PullMonitorable(net.node(host)), object_key="ft/monitorable"
        )
        detector.monitor_host(host, ior, objects=["svc-a", "svc-b"])
    detector.start()
    sim.run_for(1.0)
    assert faults == []
    net.node("h2").crash()
    sim.run_for(2.0)
    assert detector.suspected_hosts() == ["h2"]
    # The host fault fans out to the objects registered on it.
    assert faults == ["h2", "svc-a@h2", "svc-b@h2"]
