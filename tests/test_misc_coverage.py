"""Coverage for smaller surfaces: typed stubs, POA details, stub checks,
IDL introspection, locate over the replication router."""

import pytest

from repro.core import EternalSystem
from repro.orb import ORB, BadOperation
from repro.orb.idl import Servant, interface_of, operation
from repro.orb.orb_core import wait_for
from repro.orb.stubgen import generate_stub_class
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import Network, Simulator
from repro.workloads import Counter


def make_pair():
    sim = Simulator()
    net = Network(sim)
    server = ORB(net, net.add_node("server"))
    client = ORB(net, net.add_node("client"))
    return sim, net, server, client


# ----------------------------------------------------------------------
# Typed stub generation
# ----------------------------------------------------------------------

def test_generated_stub_invokes():
    sim, net, server, client = make_pair()
    ior = server.poa.activate(Counter())
    CounterStub = generate_stub_class(Counter)
    stub = CounterStub(client, ior)
    assert wait_for(sim, stub.increment(2)) == 2
    assert wait_for(sim, stub.read()) == 2


def test_generated_stub_has_named_methods_and_docs():
    CounterStub = generate_stub_class(Counter)
    assert CounterStub.__name__ == "CounterStub"
    assert callable(CounterStub.increment)
    assert "read-only" in CounterStub.read.__doc__
    assert "oneway" in CounterStub.poke.__doc__
    with pytest.raises(AttributeError):
        CounterStub.no_such_operation  # noqa: B018


def test_generated_stub_oneway_resolves_immediately():
    sim, net, server, client = make_pair()
    ior = server.poa.activate(Counter())
    stub = generate_stub_class(Counter)(client, ior.to_string())
    future = stub.poke()
    assert future.done() and future.result() is None
    sim.run_for(0.5)
    assert wait_for(sim, stub.read()) == 1


def test_generated_stub_works_on_group_reference():
    system = EternalSystem(["n1", "n2", "n3"]).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2"], GroupPolicy(style=ReplicationStyle.ACTIVE)
    )
    system.run_for(0.5)
    stub = generate_stub_class(Counter)(system.nodes["n3"].orb, ior)
    assert system.call(stub.increment(4)) == 4


# ----------------------------------------------------------------------
# IDL introspection
# ----------------------------------------------------------------------

def test_interface_of_collects_operations_and_flags():
    info = interface_of(Counter)
    assert info.repository_id == "IDL:Counter:1.0"
    assert set(info.operations) == {"increment", "decrement", "read", "poke"}
    assert info.operations["read"].read_only
    assert info.operations["poke"].oneway
    assert not info.operations["increment"].oneway
    with pytest.raises(BadOperation):
        info.operation_info("nope")


def test_repository_id_override():
    class Custom(Servant):
        REPOSITORY_ID = "IDL:acme/Custom:2.3"

        @operation()
        def ping(self):
            return "pong"

    assert interface_of(Custom).repository_id == "IDL:acme/Custom:2.3"


def test_interface_cached_per_class():
    assert interface_of(Counter) is interface_of(Counter)
    assert interface_of(Counter()) is interface_of(Counter)


# ----------------------------------------------------------------------
# POA details
# ----------------------------------------------------------------------

def test_poa_duplicate_key_rejected():
    sim, net, server, client = make_pair()
    server.poa.activate(Counter(), object_key="k1")
    with pytest.raises(ValueError):
        server.poa.activate(Counter(), object_key="k1")


def test_poa_generated_keys_unique_and_listed():
    sim, net, server, client = make_pair()
    iors = [server.poa.activate(Counter()) for _ in range(3)]
    keys = [i.iiop_profiles()[0].object_key for i in iors]
    assert len(set(keys)) == 3
    assert set(keys) <= set(server.poa.object_keys())


def test_typed_orb_stub_interface_checking():
    sim, net, server, client = make_pair()
    ior = server.poa.activate(Counter())
    stub = client.stub(ior, interface=Counter)
    with pytest.raises(BadOperation):
        stub.no_such_op  # noqa: B018 - checked at attribute access


# ----------------------------------------------------------------------
# Locate through the replication router (fallback path)
# ----------------------------------------------------------------------

def test_locate_through_group_router_fallback():
    system = EternalSystem(["n1", "n2"]).start()
    system.stabilize()
    plain = system.nodes["n1"].orb.poa.activate(Counter())
    status = system.call(system.nodes["n2"].orb.locate(plain))
    assert status == 1  # OBJECT_HERE via the fallback direct path
