"""Unit tests for the network/node layer: delivery, loss, crashes, partitions."""

import pytest

from repro.simnet import FaultPlan, LinkProfile, Network, Simulator
from repro.simnet.errors import NodeDownError, UnknownNodeError


def make_net(seed=0, profile=None, nodes=("a", "b", "c")):
    sim = Simulator(seed=seed)
    net = Network(sim, profile=profile)
    for node_id in nodes:
        net.add_node(node_id)
    return sim, net


def collect(node, port="p"):
    received = []
    node.bind(port, lambda src, payload, size: received.append((src, payload)))
    return received


def test_unicast_delivery():
    sim, net = make_net()
    received = collect(net.node("b"))
    net.send("a", "b", "p", "hello", size=100)
    sim.run()
    assert received == [("a", "hello")]


def test_delivery_latency_includes_serialization():
    profile = LinkProfile(latency=0.001, bandwidth=1000.0, per_hop_overhead=0)
    sim, net = make_net(profile=profile)
    times = []
    net.node("b").bind("p", lambda src, payload, size: times.append(sim.now))
    net.send("a", "b", "p", "x", size=1000)  # 1 second of serialization
    sim.run()
    assert times == [pytest.approx(1.001)]


def test_fifo_order_preserved_per_flow():
    sim, net = make_net(profile=LinkProfile(jitter=0.01))
    received = collect(net.node("b"))
    for i in range(20):
        net.send("a", "b", "p", i, size=10)
    sim.run()
    assert [payload for _, payload in received] == list(range(20))


def test_broadcast_reaches_all_nodes_including_self():
    sim, net = make_net()
    logs = {node_id: collect(net.node(node_id)) for node_id in net.node_ids()}
    destinations = net.broadcast("a", "p", "m", size=50)
    sim.run()
    assert sorted(destinations) == ["a", "b", "c"]
    for node_id in ("a", "b", "c"):
        assert logs[node_id] == [("a", "m")]


def test_broadcast_exclude_self():
    sim, net = make_net()
    logs = {node_id: collect(net.node(node_id)) for node_id in net.node_ids()}
    net.broadcast("a", "p", "m", include_self=False)
    sim.run()
    assert logs["a"] == []
    assert logs["b"] == [("a", "m")]


def test_loss_drops_messages_deterministically():
    profile = LinkProfile(loss=0.5)
    sim, net = make_net(seed=3, profile=profile)
    received = collect(net.node("b"))
    for i in range(200):
        net.send("a", "b", "p", i)
    sim.run()
    assert 0 < len(received) < 200
    # Determinism: same seed gives same losses.
    sim2, net2 = make_net(seed=3, profile=profile)
    received2 = collect(net2.node("b"))
    for i in range(200):
        net2.send("a", "b", "p", i)
    sim2.run()
    assert received == received2


def test_self_delivery_never_lost():
    profile = LinkProfile(loss=1.0)
    sim, net = make_net(profile=profile)
    received = collect(net.node("a"))
    net.broadcast("a", "p", "m")
    sim.run()
    assert received == [("a", "m")]


def test_crashed_destination_drops_message():
    sim, net = make_net()
    received = collect(net.node("b"))
    net.node("b").crash()
    net.send("a", "b", "p", "m")
    sim.run()
    assert received == []


def test_crashed_source_cannot_send():
    sim, net = make_net()
    net.node("a").crash()
    assert net.send("a", "b", "p", "m") is False
    assert net.broadcast("a", "p", "m") == []


def test_crash_mid_flight_loses_message():
    sim, net = make_net(profile=LinkProfile(latency=1.0))
    received = collect(net.node("b"))
    net.send("a", "b", "p", "m")
    sim.schedule(0.5, lambda: net.node("b").crash())
    sim.run()
    assert received == []


def test_recover_bumps_incarnation_and_redelivers():
    sim, net = make_net()
    node_b = net.node("b")
    received = collect(node_b)
    node_b.crash()
    node_b.recover()
    assert node_b.incarnation == 1
    net.send("a", "b", "p", "after")
    sim.run()
    assert received == [("a", "after")]


def test_node_timer_skipped_after_crash():
    sim, net = make_net()
    fired = []
    net.node("b").timer(1.0, lambda: fired.append(1))
    net.node("b").crash()
    sim.run()
    assert fired == []


def test_node_timer_skipped_after_restart():
    sim, net = make_net()
    fired = []
    node = net.node("b")
    node.timer(1.0, lambda: fired.append(1))
    node.crash()
    node.recover()
    sim.run()
    assert fired == []


def test_partition_blocks_cross_component_traffic():
    sim, net = make_net()
    received_b = collect(net.node("b"))
    received_c = collect(net.node("c"))
    net.partition([("a", "b"), ("c",)])
    net.send("a", "b", "p", "in-component")
    net.send("a", "c", "p", "cross")
    sim.run()
    assert received_b == [("a", "in-component")]
    assert received_c == []


def test_merge_restores_connectivity():
    sim, net = make_net()
    received_c = collect(net.node("c"))
    net.partition([("a", "b"), ("c",)])
    net.merge()
    net.send("a", "c", "p", "m")
    sim.run()
    assert received_c == [("a", "m")]


def test_partition_validation():
    sim, net = make_net()
    with pytest.raises(ValueError):
        net.partition([("a", "b")])  # c missing
    with pytest.raises(ValueError):
        net.partition([("a", "b"), ("b", "c")])  # b duplicated
    with pytest.raises(UnknownNodeError):
        net.partition([("a", "b"), ("c", "zzz")])


def test_component_of():
    sim, net = make_net()
    net.partition([("a", "b"), ("c",)])
    assert net.component_of("a") == ["a", "b"]
    assert net.component_of("c") == ["c"]


def test_unknown_node_errors():
    sim, net = make_net()
    with pytest.raises(UnknownNodeError):
        net.send("zzz", "a", "p", "m")
    with pytest.raises(UnknownNodeError):
        net.node("zzz")
    with pytest.raises(ValueError):
        net.add_node("a")


def test_require_alive():
    sim, net = make_net()
    net.node("a").crash()
    with pytest.raises(NodeDownError):
        net.node("a").require_alive()


def test_fault_plan_applies_in_order():
    sim, net = make_net()
    plan = (
        FaultPlan()
        .crash(1.0, "a")
        .partition(2.0, [("a", "b"), ("c",)])
        .recover(3.0, "a")
        .merge(4.0)
    )
    plan.arm(net)
    sim.run_until(1.5)
    assert not net.node("a").alive
    sim.run_until(2.5)
    assert net.component_of("c") == ["c"]
    sim.run_until(3.5)
    assert net.node("a").alive
    sim.run_until(4.5)
    assert net.component_of("c") == ["a", "b", "c"]


def test_link_profile_validation():
    with pytest.raises(ValueError):
        LinkProfile(latency=-1)
    with pytest.raises(ValueError):
        LinkProfile(loss=1.5)
    with pytest.raises(ValueError):
        LinkProfile(bandwidth=0)
    profile = LinkProfile(bandwidth=None)
    assert profile.serialization_delay(10_000) == 0.0
    copy = profile.copy(loss=0.1)
    assert copy.loss == 0.1 and profile.loss == 0.0
