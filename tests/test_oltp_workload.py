"""Tests for the OLTP chaos workload (repro.workloads.oltp)."""

import pytest

from repro.core import EternalSystem
from repro.orb.exceptions import ApplicationError
from repro.replication import GroupPolicy, ReplicationStyle
from repro.runtime.sim import SimRuntime
from repro.workloads import (
    READ_OPERATIONS,
    AccountsService,
    CatalogService,
    InsufficientBalance,
    OltpRecord,
    OltpTraffic,
    OrdersService,
    OutOfStock,
)

NODES = ["n1", "n2", "n3"]


# ---------------------------------------------------------------------------
# Servant semantics (direct, no replication)
# ---------------------------------------------------------------------------


def test_accounts_debit_rejects_overdraft_but_ledgers_the_attempt():
    accounts = AccountsService({"alice": 10})
    assert accounts.deposit("op1", "alice", 5) == 15
    assert accounts.debit("op2", "alice", 15) == 0
    with pytest.raises(InsufficientBalance):
        accounts.debit("op3", "alice", 1)
    # The ledger records entry *before* validation: the rejected debit
    # still shows up, which is what lets the invariant checker attribute
    # duplicated re-executions even for failing operations.
    assert accounts.ledger == {"op1": 1, "op2": 1, "op3": 1}
    assert accounts.balance_of("alice") == 0


def test_catalog_reserve_release_and_out_of_stock():
    catalog = CatalogService({"widget": 2})
    assert catalog.reserve("r1", "widget", 2) == 0
    with pytest.raises(OutOfStock):
        catalog.reserve("r2", "widget", 1)
    assert catalog.release("r3", "widget", 2) == 2
    assert catalog.restock("r4", "widget", 3) == 5
    assert catalog.ledger == {"r1": 1, "r2": 1, "r3": 1, "r4": 1}


def test_servant_state_round_trips_through_checkpoint():
    accounts = AccountsService({"alice": 10})
    accounts.deposit("op1", "alice", 5)
    clone = AccountsService()
    clone.set_state(accounts.get_state())
    assert clone.balances == {"alice": 15}
    assert clone.ledger == {"op1": 1}


def test_orders_state_is_canonical_regardless_of_append_order():
    a, b = OrdersService(), OrdersService()
    a.orders = [("o1", "alice", "widget", 1, 5), ("o2", "bob", "gizmo", 1, 5)]
    b.orders = list(reversed(a.orders))
    a.ledger = b.ledger = {"o1": 1, "o2": 1}
    assert a.get_state() == b.get_state()


def test_oltp_record_rejection_tagging():
    record = OltpRecord("op1", "accounts", "debit", ("op1", "alice", 5), 0.0)
    assert not record.rejected
    record.error = ApplicationError("InsufficientBalance", "no")
    assert record.rejected and not record.ok
    record.error = RuntimeError("transport died")
    assert not record.rejected


# ---------------------------------------------------------------------------
# The nested order chain over a replicated system
# ---------------------------------------------------------------------------


def _oltp_system(runtime):
    system = EternalSystem(NODES, runtime=runtime).start()
    system.stabilize()
    accounts_ior = system.create_replicated(
        "accounts", lambda: AccountsService({"alice": 100, "bob": 0}),
        NODES, GroupPolicy(style=ReplicationStyle.ACTIVE))
    catalog_ior = system.create_replicated(
        "catalog", lambda: CatalogService({"widget": 3}),
        NODES, GroupPolicy(style=ReplicationStyle.ACTIVE))
    orders_ior = system.create_replicated(
        "orders",
        lambda: OrdersService(catalog_ref=catalog_ior,
                              accounts_ref=accounts_ior),
        NODES, GroupPolicy(style=ReplicationStyle.ACTIVE))
    system.run_for(0.5)
    return system, accounts_ior, catalog_ior, orders_ior


def test_place_order_nests_reserve_then_debit():
    system, accounts_ior, catalog_ior, orders_ior = _oltp_system(
        SimRuntime(seed=1))
    orders = system.stub("n1", orders_ior)
    result = system.call(orders.place_order("o1", "alice", "widget", 2))
    assert result["cost"] == 10
    assert system.call(
        system.stub("n1", catalog_ior).stock_of("widget")) == 1
    assert system.call(
        system.stub("n1", accounts_ior).balance_of("alice")) == 90
    ledger = system.call(
        system.stub("n1", catalog_ior).ledger_snapshot())
    assert ledger == {"o1/reserve": 1}


def test_place_order_compensates_when_payment_fails():
    system, accounts_ior, catalog_ior, orders_ior = _oltp_system(
        SimRuntime(seed=2))
    orders = system.stub("n1", orders_ior)
    with pytest.raises(ApplicationError, match="PaymentFailed"):
        system.call(orders.place_order("o1", "bob", "widget", 1))
    # Stock was reserved, then released by the compensation leg.
    assert system.call(
        system.stub("n1", catalog_ior).stock_of("widget")) == 3
    ledger = system.call(
        system.stub("n1", catalog_ior).ledger_snapshot())
    assert ledger == {"o1/reserve": 1, "o1/release": 1}
    assert system.call(orders.order_count()) == 0


# ---------------------------------------------------------------------------
# Traffic generation
# ---------------------------------------------------------------------------


class _RecordingStub:
    """Resolves every call immediately with a canned future."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.calls = []

    def __getattr__(self, op):
        def invoke(*args):
            self.calls.append((op, args))
            from repro.orb.orb_core import Future
            future = Future()
            future.set_result(0)
            return future
        return invoke


def _drive_traffic(seed, rate=30, duration=2.0):
    runtime = SimRuntime(seed=seed)
    stubs = {name: _RecordingStub(runtime)
             for name in ("accounts", "catalog", "orders")}
    traffic = OltpTraffic(runtime, stubs, rate=rate, duration=duration)
    traffic.start()
    runtime.run_for(duration + 1.0)
    return traffic


def test_traffic_is_deterministic_per_seed():
    first = _drive_traffic(seed=42)
    second = _drive_traffic(seed=42)
    assert [(r.op_id, r.service, r.operation, r.args)
            for r in first.records] == \
           [(r.op_id, r.service, r.operation, r.args)
            for r in second.records]
    different = _drive_traffic(seed=43)
    assert [(r.operation, r.args) for r in first.records] != \
           [(r.operation, r.args) for r in different.records]


def test_traffic_completes_and_filters_reads():
    traffic = _drive_traffic(seed=7)
    assert traffic.records  # the window actually produced load
    assert traffic.pending == 0
    assert traffic.finished
    reads = {"balance_of", "stock_of", "ledger_snapshot", "order_count"}
    mutating = traffic.mutating_records()
    assert all(r.operation not in reads for r in mutating)
    assert all(r.args[0] == r.op_id for r in mutating)
    assert len(mutating) < len(traffic.records)  # mix includes reads


def test_declared_read_operations_are_read_only():
    from repro.orb.idl import interface_of

    assert interface_of(AccountsService).operations["get_balance"].read_only
    assert interface_of(CatalogService).operations["browse_catalog"].read_only
    assert interface_of(OrdersService).operations["order_status"].read_only
    # ...and they really do not mutate.
    accounts = AccountsService({"alice": 10})
    before = accounts.get_state()
    accounts.get_balance("alice")
    accounts.get_balance("nobody")
    assert accounts.get_state() == before


def test_read_fraction_skews_the_mix():
    def fraction_of_reads(read_fraction):
        runtime = SimRuntime(seed=11)
        stubs = {name: _RecordingStub(runtime)
                 for name in ("accounts", "catalog", "orders")}
        traffic = OltpTraffic(runtime, stubs, rate=60, duration=3.0,
                              read_fraction=read_fraction)
        traffic.start()
        runtime.run_for(4.0)
        reads = [r for r in traffic.records
                 if r.operation in READ_OPERATIONS]
        return len(reads) / len(traffic.records)

    low, high = fraction_of_reads(0.1), fraction_of_reads(0.9)
    assert low < 0.3 < 0.7 < high


def test_read_fraction_draws_from_the_read_mix():
    runtime = SimRuntime(seed=5)
    stubs = {name: _RecordingStub(runtime)
             for name in ("accounts", "catalog", "orders")}
    traffic = OltpTraffic(runtime, stubs, rate=60, duration=3.0,
                          read_fraction=1.0)
    traffic.start()
    runtime.run_for(4.0)
    assert traffic.records
    assert {r.operation for r in traffic.records} <= {
        "get_balance", "browse_catalog", "order_status"}
    assert not traffic.mutating_records()


def test_default_mix_is_unchanged_by_the_read_knob():
    # read_fraction=None must not consume the new RNG stream: the default
    # schedule stays byte-identical to what pre-knob code produced.
    baseline = _drive_traffic(seed=42)
    again = _drive_traffic(seed=42)
    assert [(r.op_id, r.operation, r.args) for r in baseline.records] == \
           [(r.op_id, r.operation, r.args) for r in again.records]
    with pytest.raises(ValueError):
        OltpTraffic(SimRuntime(seed=0), {}, rate=1, duration=1.0,
                    read_fraction=1.5)
