"""Tests for post-image (incremental) passive state updates."""

import pytest

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import Counter, KeyValueStore


def image_policy(**overrides):
    overrides.setdefault("update_mode", "image")
    return GroupPolicy(style=ReplicationStyle.WARM_PASSIVE, **overrides)


def system_up(seed=0):
    system = EternalSystem(["n1", "n2", "n3", "c"], seed=seed).start()
    system.stabilize()
    return system


def test_image_updates_keep_backups_current():
    system = system_up()
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2", "n3"], image_policy()
    )
    system.run_for(0.5)
    stub = system.stub("c", ior)
    system.call(stub.put("a", 1))
    system.call(stub.put("b", [2, 3]))
    system.call(stub.delete("a"))
    states = system.states_of("kv")
    assert states["n1"] == states["n2"] == states["n3"] == {"b": [2, 3]}
    # Only image updates were pushed, never the full state.
    assert system.sim.trace.count("ft.state.update.image.sent") == 3
    assert system.sim.trace.count("ft.state.update.sent") == 0


def test_image_updates_are_much_smaller_than_full_state():
    def bytes_per_update(mode):
        system = system_up()
        system.create_replicated(
            "kv", KeyValueStore, ["n1", "n2"],
            image_policy(update_mode=mode),
        )
        system.run_for(0.5)
        stub = system.stub("c", system.manager.ior_of("kv"))
        system.call(stub.preload(300, 64), timeout=120.0)
        before = system.sim.trace.snapshot()
        before_bytes = dict(system.sim.trace.byte_counters)
        for index in range(5):
            system.call(stub.put("k%d" % index, "v"))
        sent = (system.sim.trace.byte_counters["net.broadcast"]
                - before_bytes.get("net.broadcast", 0))
        return sent

    image_bytes = bytes_per_update("image")
    full_bytes = bytes_per_update("full")
    # 300 preloaded entries ride in every full-state push; the image push
    # carries one key-value pair.
    assert image_bytes * 5 < full_bytes


def test_image_mode_falls_back_without_servant_support():
    system = system_up()
    system.create_replicated(
        "ctr", Counter, ["n1", "n2"], image_policy()
    )
    system.run_for(0.5)
    stub = system.stub("c", system.manager.ior_of("ctr"))
    system.call(stub.increment(1))
    # Counter has no get_update_image: the engine fell back to full state.
    assert system.sim.trace.count("ft.state.update.sent") == 1
    assert system.sim.trace.count("ft.state.update.image.sent") == 0
    assert set(system.states_of("ctr").values()) == {1}


def test_failover_after_image_updates():
    system = system_up()
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2", "n3"], image_policy()
    )
    system.run_for(0.5)
    stub = system.stub("c", ior)
    for index in range(6):
        system.call(stub.put("k%d" % index, index))
    system.crash("n1")
    system.stabilize()
    assert system.call(stub.put("post", "crash"), timeout=60.0) is True
    states = system.states_of("kv")
    assert states["n2"] == states["n3"]
    assert states["n2"]["post"] == "crash"
    assert all("k%d" % i in states["n2"] for i in range(6))


def test_preload_falls_back_to_full_state_in_image_mode():
    """An operation the servant cannot describe as an image (bulk preload)
    must push the full state so backups never silently diverge."""
    system = system_up()
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2"], image_policy()
    )
    system.run_for(0.5)
    stub = system.stub("c", ior)
    system.call(stub.put("x", 1))          # image path, consumes the image
    system.call(stub.preload(20, 8), timeout=60.0)  # no image -> full push
    states = system.states_of("kv")
    assert states["n1"] == states["n2"]
    assert len(states["n2"]) == 21
    assert system.sim.trace.count("ft.state.update.sent") >= 1


def test_update_mode_validation():
    with pytest.raises(ValueError):
        GroupPolicy(update_mode="diff")
