"""Unit tests for replication building blocks: identifiers, tables, styles,
election, and partition decision logic."""

import pytest

from repro.partition import (
    FulfillmentPlan,
    derive_side_representative,
    divergent_operations,
    should_adopt_capture,
)
from repro.replication import (
    DuplicateTables,
    ExecutionContext,
    GroupPolicy,
    InvocationId,
    OperationIdAllocator,
    ReplicationStyle,
    choose_primary,
    choose_state_sponsor,
    fulfillment_operation_id,
    is_primary,
    nested_operation_id,
    top_level_operation_id,
)


# ----------------------------------------------------------------------
# Identifiers
# ----------------------------------------------------------------------

def test_top_level_ids_unique_and_deterministic():
    alloc_a = OperationIdAllocator("client/x")
    alloc_b = OperationIdAllocator("client/x")
    ids_a = [alloc_a.next_top_level() for _ in range(5)]
    ids_b = [alloc_b.next_top_level() for _ in range(5)]
    assert ids_a == ids_b  # replicated clients derive identical ids
    assert len(set(ids_a)) == 5
    assert alloc_a.issued == 5


def test_ids_differ_across_client_groups():
    a = OperationIdAllocator("client/x").next_top_level()
    b = OperationIdAllocator("client/y").next_top_level()
    assert a != b


def test_nested_ids_chain_from_parents():
    parent = top_level_operation_id("g", 1)
    ctx = ExecutionContext(parent, "server-group")
    first = ctx.next_nested_id()
    second = ctx.next_nested_id()
    assert first == nested_operation_id(parent, 1)
    assert second == nested_operation_id(parent, 2)
    assert first != second
    # A nested op of a nested op is distinct from its ancestors.
    grandchild = ExecutionContext(first, "x").next_nested_id()
    assert grandchild not in (parent, first, second)


def test_fulfillment_ids_distinct_from_originals():
    original = top_level_operation_id("g", 3)
    fulfillment = fulfillment_operation_id(original, 0)
    assert fulfillment != original
    assert fulfillment[0] == "f"


def test_invocation_id_round_trip():
    inv = InvocationId(top_level_operation_id("g", 1), "n1", attempt=2)
    restored = InvocationId.from_value(inv.as_value())
    assert restored == inv
    assert hash(restored) == hash(inv)


# ----------------------------------------------------------------------
# Duplicate tables
# ----------------------------------------------------------------------

def test_duplicate_tables_lifecycle():
    tables = DuplicateTables()
    op = top_level_operation_id("g", 1)
    assert tables.is_new_request(op)
    tables.note_executing(op)
    assert tables.status(op) == "executing"
    tables.note_completed(op, b"reply-bytes")
    assert tables.status(op) == "completed"
    assert tables.cached_reply(op) == b"reply-bytes"
    assert tables.completed_operation_ids() == {op}


def test_duplicate_tables_reply_side():
    tables = DuplicateTables()
    op = top_level_operation_id("g", 2)
    assert not tables.reply_already_seen(op)
    tables.note_reply_seen(op)
    assert tables.reply_already_seen(op)
    tables.note_suppressed_reply()
    tables.note_suppressed_request()
    assert tables.suppressed_replies == 1
    assert tables.suppressed_requests == 1


def test_duplicate_tables_capture_restore_round_trip():
    tables = DuplicateTables()
    op1 = top_level_operation_id("g", 1)
    op2 = nested_operation_id(op1, 1)
    tables.note_executing(op1)
    tables.note_completed(op1, b"r1")
    tables.note_executing(op2)
    tables.note_reply_seen(op1)
    snapshot = tables.capture()
    # The snapshot must survive CDR marshaling (it travels in captures).
    from repro.orb.cdr import decode_value, encode_value

    snapshot = decode_value(encode_value(snapshot))
    restored = DuplicateTables.restore(snapshot)
    assert restored.status(op1) == "completed"
    assert restored.status(op2) == "executing"
    assert restored.cached_reply(op1) == b"r1"
    assert restored.reply_already_seen(op1)


# ----------------------------------------------------------------------
# Styles and election
# ----------------------------------------------------------------------

def test_replication_style_validation():
    with pytest.raises(ValueError):
        ReplicationStyle.validate("tripled")
    assert ReplicationStyle.executes_everywhere(ReplicationStyle.ACTIVE)
    assert ReplicationStyle.executes_everywhere(ReplicationStyle.SEMI_ACTIVE)
    assert not ReplicationStyle.executes_everywhere(ReplicationStyle.WARM_PASSIVE)
    assert ReplicationStyle.is_passive(ReplicationStyle.COLD_PASSIVE)
    assert not ReplicationStyle.is_passive(ReplicationStyle.ACTIVE)


def test_group_policy_validation_and_copy():
    with pytest.raises(ValueError):
        GroupPolicy(state_transfer="osmosis")
    with pytest.raises(ValueError):
        GroupPolicy(dispatch_policy="fibers")
    policy = GroupPolicy(style=ReplicationStyle.ACTIVE, min_replicas=5)
    clone = policy.copy(style=ReplicationStyle.WARM_PASSIVE)
    assert clone.style == ReplicationStyle.WARM_PASSIVE
    assert clone.min_replicas == 5
    assert policy.style == ReplicationStyle.ACTIVE


def test_primary_election():
    assert choose_primary(["n3", "n1", "n2"]) == "n1"
    assert choose_primary([]) is None
    assert is_primary("n1", ["n1", "n2"])
    assert not is_primary("n2", ["n1", "n2"])


def test_state_sponsor_must_survive():
    assert choose_state_sponsor(["n1", "n2"], ["n2", "n3"]) == "n2"
    assert choose_state_sponsor([], ["n1"]) is None


# ----------------------------------------------------------------------
# Partition decision logic
# ----------------------------------------------------------------------

def test_side_representative_from_transitional():
    assert derive_side_representative(
        ["n1", "n2", "n3", "n4"], ["n3", "n4"], "n4"
    ) == "n3"
    # A replica alone in its component is its own representative.
    assert derive_side_representative(["n1", "n2"], [], "n2") == "n2"


def test_adopt_decision():
    assert should_adopt_capture("n1", "n3", "n4") is True
    assert should_adopt_capture("n3", "n3", "n4") is False
    assert should_adopt_capture("n5", "n3", "n4") is False
    assert should_adopt_capture("n4", "n3", "n4") is False  # own capture
    assert should_adopt_capture("n1", None, "n4") is True


def test_divergent_operations_diff():
    op1 = top_level_operation_id("g", 1)
    op2 = top_level_operation_id("g", 2)
    op3 = fulfillment_operation_id(op1, 0)
    completed_order = [op1, op2, op3]
    journal = {op1: (b"req1", "cg"), op2: (b"req2", "cg"), op3: (b"req3", "cg")}
    their_completed = {op1}
    divergent = divergent_operations(completed_order, journal, their_completed)
    # op1 is known to them; op3 is a fulfillment op; only op2 replays.
    assert divergent == [(op2, b"req2", "cg")]
    plan = FulfillmentPlan("g", divergent)
    assert not plan.empty and len(plan) == 1


def test_divergent_operations_skips_unjournaled():
    op = top_level_operation_id("g", 1)
    assert divergent_operations([op], {}, set()) == []
    assert divergent_operations([op], {op: (None, None)}, set()) == []
