"""End-to-end tests of warm and cold passive replication and failover."""

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import Counter, KeyValueStore


def system_up(nodes=("n1", "n2", "n3"), seed=0):
    system = EternalSystem(list(nodes), seed=seed).start()
    system.stabilize()
    return system


def warm(**overrides):
    return GroupPolicy(style=ReplicationStyle.WARM_PASSIVE, **overrides)


def cold(**overrides):
    overrides.setdefault("checkpoint_interval_ops", 3)
    return GroupPolicy(style=ReplicationStyle.COLD_PASSIVE, **overrides)


def test_warm_only_primary_executes():
    system = system_up()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    for _ in range(4):
        system.call(stub.increment(1))
    replicas = system.replicas_of("ctr")
    assert replicas["n1"].is_primary  # lowest id is the primary
    # Backups applied state updates rather than executing: their counters
    # advanced, and the execution trace shows only the primary executing.
    assert set(system.states_of("ctr").values()) == {4}


def test_warm_state_updates_keep_backups_current():
    system = system_up()
    system.create_replicated("kv", KeyValueStore, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n2", system.manager.ior_of("kv"))
    system.call(stub.put("a", 1))
    system.call(stub.put("b", [1, 2, 3]))
    states = system.states_of("kv")
    assert states["n2"] == {"a": 1, "b": [1, 2, 3]}
    assert states["n1"] == states["n2"] == states["n3"]


def test_warm_read_only_skips_state_update():
    system = system_up()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    system.call(stub.increment(1))
    before = system.sim.trace.count("ft.state.update.sent")
    for _ in range(5):
        assert system.call(stub.read()) == 1
    after = system.sim.trace.count("ft.state.update.sent")
    assert after == before


def test_warm_failover_promotes_backup():
    system = system_up()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n3", ior)
    for _ in range(3):
        system.call(stub.increment(1))
    system.crash("n1")  # the primary
    system.stabilize()
    assert system.replicas_of("ctr")["n2"].is_primary
    assert system.call(stub.increment(1)) == 4
    states = system.states_of("ctr")
    assert states["n2"] == 4 and states["n3"] == 4


def test_warm_failover_completes_in_flight_request():
    """A request delivered but unexecuted when the primary dies must be
    completed by the new primary (the paper's reinvocation scenario)."""
    system = system_up()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n3", ior)
    system.call(stub.increment(1))
    # Crash the primary immediately after issuing; depending on timing the
    # request is either never delivered (client never sees a reply until
    # retry/timeout) or delivered and completed by the new primary.
    future = stub.increment(1)
    system.crash("n1")
    system.run_for(8.0)
    system.stabilize()
    if future.done() and future.exception() is None:
        assert future.result() == 2
        assert system.states_of("ctr")["n2"] == 2
    else:
        # The request died with the primary before ordering: state must
        # still be consistent at 1 across survivors.
        assert set(system.states_of("ctr").values()) == {1}


def test_warm_no_duplicate_execution_across_failover():
    system = system_up()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], warm())
    system.run_for(0.3)
    stub = system.stub("n2", ior)
    for _ in range(5):
        system.call(stub.increment(1))
    system.crash("n1")
    system.stabilize()
    for _ in range(5):
        system.call(stub.increment(1))
    assert set(system.states_of("ctr").values()) == {10}


def test_cold_backups_do_not_apply_until_checkpoint():
    system = system_up()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"],
                             cold(checkpoint_interval_ops=100))
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    for _ in range(4):
        system.call(stub.increment(1))
    replicas = system.replicas_of("ctr")
    assert replicas["n1"].servant.value == 4
    assert replicas["n2"].servant.value == 0  # no checkpoint yet
    assert len(replicas["n2"].pending_requests) == 4  # but everything logged


def test_cold_checkpoint_truncates_backup_logs():
    system = system_up()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], cold())
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    for _ in range(3):  # hits the checkpoint interval
        system.call(stub.increment(1))
    system.run_for(0.5)
    replicas = system.replicas_of("ctr")
    assert replicas["n2"].servant.value == 3  # checkpoint applied
    assert len(replicas["n2"].pending_requests) == 0


def test_cold_failover_replays_log():
    system = system_up()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], cold())
    system.run_for(0.3)
    stub = system.stub("n3", ior)
    for _ in range(5):  # 3 covered by a checkpoint, 2 in the log
        system.call(stub.increment(1))
    system.crash("n1")
    system.stabilize()
    system.run_for(1.0)
    # New primary replayed the logged tail; clients see continuous state.
    assert system.call(stub.increment(1)) == 6
    assert system.states_of("ctr")["n2"] == 6


def test_semi_active_only_leader_replies_but_all_execute():
    system = system_up()
    policy = GroupPolicy(style=ReplicationStyle.SEMI_ACTIVE)
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], policy)
    system.run_for(0.3)
    stub = system.stub("n2", ior)
    for _ in range(4):
        system.call(stub.increment(1))
    # Every replica executed (state equal without state updates)...
    assert set(system.states_of("ctr").values()) == {4}
    assert system.sim.trace.count("ft.state.update.sent") == 0
    # ...but followers never sent replies.
    followers = [r for r in system.replicas_of("ctr").values() if not r.is_primary]
    assert all(f.tables.suppressed_replies >= 4 for f in followers)


def test_semi_active_failover():
    system = system_up()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"], GroupPolicy(style=ReplicationStyle.SEMI_ACTIVE)
    )
    system.run_for(0.3)
    stub = system.stub("n3", ior)
    system.call(stub.increment(1))
    system.crash("n1")
    system.stabilize()
    assert system.call(stub.increment(1)) == 2
