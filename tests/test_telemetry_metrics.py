"""Unit tests for repro.telemetry: metrics, spans, recorder, trace sinks."""

import math

import pytest

from repro.simnet.trace import TraceLog, TraceSnapshot
from repro.telemetry import (
    FlightRecorder,
    LAYER_INTERVALS,
    MetricsRegistry,
    SpanTracker,
    Telemetry,
    format_summary,
    span_id_for_operation,
)
from repro.telemetry.metrics import HistogramMetric, percentile
from repro.telemetry.recorder import jsonable


# ---------------------------------------------------------------- metrics

def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.counter("a").inc(4)
    registry.gauge("b").set(3)
    registry.gauge("b").add(-1)
    assert registry.snapshot() == {"a": 5, "b": 2}


def test_registry_rejects_type_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_histogram_buckets_and_percentiles():
    histogram = HistogramMetric("lat", bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.003, 0.05, 5.0):
        histogram.record(value)
    assert histogram.total == 5
    assert [count for _b, count in histogram.bucket_counts()] == [1, 2, 1, 1]
    assert histogram.bucket_counts()[-1][0] == math.inf
    assert histogram.minimum == 0.0005 and histogram.maximum == 5.0
    assert histogram.p50 == 0.003
    assert histogram.p99 == 5.0
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["buckets"][-1][0] == "inf"


def test_histogram_sample_limit_keeps_prefix_deterministically():
    histogram = HistogramMetric("lat", bounds=(1.0,), sample_limit=3)
    for value in (1, 2, 3, 4, 5):
        histogram.record(value)
    assert histogram.total == 5          # buckets cover everything
    assert histogram._samples == [1, 2, 3]  # keep-first, no randomness


def test_histogram_window_reads_recent_behavior_only():
    histogram = HistogramMetric("ftdet.rtt", bounds=(1.0,))
    # An early burst of slow samples, then a recent quiet period.
    for at, value in ((0.0, 9.0), (1.0, 8.0), (2.0, 7.0)):
        histogram.record(value, at=at)
    for at in (10.0, 10.5, 11.0, 11.5):
        histogram.record(0.01, at=at)
    lifetime_p99 = histogram.p99
    recent = histogram.window(now=12.0, seconds=3.0)
    assert lifetime_p99 == 9.0           # lifetime still remembers the burst
    assert recent["count"] == 4
    assert recent["p50"] == recent["p99"] == 0.01
    assert recent["mean"] == pytest.approx(0.01)
    assert recent["min"] == recent["max"] == 0.01
    # The burst is visible through a wide-enough window...
    assert histogram.window(now=12.0, seconds=12.0)["max"] == 9.0
    # ...and an empty window reports count 0 rather than raising.
    assert histogram.window(now=100.0, seconds=1.0) == {"count": 0}


def test_histogram_window_excludes_future_and_untimed_samples():
    histogram = HistogramMetric("h", bounds=(1.0,))
    histogram.record(5.0)                 # no timestamp: lifetime-only
    histogram.record(1.0, at=2.0)
    histogram.record(2.0, at=50.0)        # ahead of the observer's clock
    assert histogram.total == 3
    window = histogram.window(now=3.0, seconds=10.0)
    assert window["count"] == 1 and window["max"] == 1.0
    assert histogram.window_samples(3.0, 10.0) == [1.0]


def test_histogram_window_ring_is_bounded():
    histogram = HistogramMetric("h", bounds=(1.0,), window_limit=3)
    for index in range(6):
        histogram.record(float(index), at=float(index))
    assert len(histogram._timed) == 3     # keeps the most recent entries
    assert histogram.window(now=6.0, seconds=10.0)["count"] == 3
    assert histogram.window(now=6.0, seconds=10.0)["min"] == 3.0


def test_histogram_window_stays_out_of_snapshot():
    timed = HistogramMetric("h", bounds=(1.0,))
    untimed = HistogramMetric("h", bounds=(1.0,))
    for value in (0.5, 2.0):
        timed.record(value, at=1.0)
        untimed.record(value)
    assert timed.snapshot() == untimed.snapshot()


def test_percentile_is_nearest_rank():
    assert percentile([1, 2, 3, 4], 0.5) == 2
    assert percentile([1, 2, 3, 4], 0.95) == 4
    with pytest.raises(ValueError):
        percentile([], 0.5)


# ------------------------------------------------------------------ spans

def test_span_lifecycle_and_layer_attribution():
    tracker = SpanTracker()
    span_id = span_id_for_operation(("c", "client/n1", 1))
    tracker.start(span_id, 1.0)
    tracker.mark(span_id, "enqueue", 1.5)
    tracker.mark(span_id, "sent", 2.0)
    tracker.mark(span_id, "delivered", 3.0)
    tracker.mark(span_id, "executed", 3.25)
    span = tracker.finish(span_id, 4.0)
    assert span.complete and span.duration() == 3.0
    layers = span.layers()
    assert layers == {"interception": 0.5, "totem": 0.5, "wire": 1.0,
                      "replication": 0.25, "runtime": 0.75}
    assert sum(layers.values()) == span.duration()
    assert tracker.layer_durations()["wire"] == [1.0]


def test_span_marks_are_first_occurrence_wins():
    tracker = SpanTracker()
    tracker.start("s", 1.0)
    tracker.mark("s", "delivered", 2.0)
    tracker.mark("s", "delivered", 5.0)  # a later replica's delivery
    assert tracker.open["s"].marks["delivered"] == 2.0
    tracker.start("s", 9.0)  # idempotent re-start keeps the first intercept
    assert tracker.open["s"].marks["intercept"] == 1.0


def test_span_unknown_ids_and_points():
    tracker = SpanTracker()
    assert tracker.mark("never-started", "delivered", 1.0) is None
    assert tracker.finish("never-started", 1.0) is None
    with pytest.raises(ValueError):
        tracker.mark("x", "not-a-point", 1.0)


def test_span_retention_is_bounded():
    tracker = SpanTracker(retain=2)
    for index in range(4):
        tracker.start("s%d" % index, float(index))
        tracker.finish("s%d" % index, float(index) + 1.0)
    assert len(tracker.finished) == 2 and tracker.dropped == 2


def test_layer_intervals_tile_the_span_points():
    points = ["intercept"]
    for _layer, start, end in LAYER_INTERVALS:
        assert start == points[-1]
        points.append(end)
    assert points[-1] == "reply"


# --------------------------------------------------------------- recorder

def test_recorder_ring_is_bounded_and_counts_everything():
    recorder = FlightRecorder(capacity=3)
    for index in range(5):
        recorder.record(float(index), "net.send", {"src": "a"}, size=index)
    assert len(recorder) == 3 and recorder.recorded == 5
    lines = recorder.export_lines()
    assert len(lines) == 3 and '"t":2.0' in lines[0]


def test_recorder_export_is_deterministic_for_odd_values():
    recorder = FlightRecorder()
    detail = {"members": frozenset({"b", "a"}), "key": (4, ("a", "b")),
              "blob": b"\x00\x01", "obj": None}
    recorder.record(0.123456789123, "ft.view", detail)
    again = FlightRecorder()
    again.record(0.123456789123, "ft.view",
                 {"obj": None, "blob": b"\x00\x01",
                  "key": (4, ("a", "b")), "members": frozenset({"a", "b"})})
    assert recorder.export_jsonl() == again.export_jsonl()
    assert recorder.export_jsonl().endswith("\n")


def test_jsonable_handles_nested_structures():
    value = jsonable({"t": (1, {2, 3}), 4: b"x"})
    assert value == {"t": [1, [2, 3]], "4": "b'x'"}


# ----------------------------------------------------- trace integration

def test_trace_sink_feeds_recorder_and_strict_validates():
    trace = TraceLog(strict=True)
    telemetry = Telemetry(trace)
    trace.emit(1.0, "net.send", {"src": "a", "dst": "b", "port": "p"}, 10)
    assert len(telemetry.recorder) == 1
    with pytest.raises(KeyError):
        trace.emit(2.0, "net.snd", {})
    with pytest.raises(ValueError):
        trace.emit(2.0, "net.send", {"source": "a"})


def test_trace_snapshot_copies_byte_counters():
    trace = TraceLog()
    trace.emit(0.0, "net.send", size=100)
    snapshot = trace.snapshot()
    trace.emit(1.0, "net.send", size=50)
    assert snapshot["net.send"] == 1 and snapshot.bytes("net.send") == 100
    assert trace.snapshot().bytes("net.send") == 150
    # Counter behaviour is preserved: deltas and copies keep working.
    delta = trace.snapshot() - snapshot
    assert delta["net.send"] == 1
    assert snapshot.copy() == snapshot
    # Equality is byte-aware: same counts, different bytes -> not equal.
    other = TraceSnapshot({"net.send": 1}, {"net.send": 999})
    assert snapshot != other
    # ...but comparing against a plain Counter ignores bytes (legacy).
    assert snapshot == {"net.send": 1}


def test_trace_record_retention_cap():
    trace = TraceLog(keep_records=True, record_limit=5)
    for i in range(8):
        trace.emit(float(i), "net.send", {"i": i})
    # The newest five records are retained, oldest evicted first.
    assert len(trace.records) == 5
    assert [r.detail["i"] for r in trace.records] == [3, 4, 5, 6, 7]
    assert trace.records_dropped == 3
    assert trace.count("trace.records.dropped") == 3
    # Counters still see every event: eviction only trims retention.
    assert trace.count("net.send") == 8


def test_trace_record_limit_validation_and_default():
    with pytest.raises(ValueError):
        TraceLog(keep_records=True, record_limit=0)
    unbounded = TraceLog(keep_records=True)
    assert unbounded.record_limit is None and unbounded.records_dropped == 0


def test_sim_runtime_caps_retained_trace_records():
    from repro.runtime.sim import SimRuntime

    capped = SimRuntime(seed=0, keep_trace_records=True)
    assert capped.trace.record_limit == SimRuntime.TRACE_RECORD_LIMIT
    explicit = SimRuntime(seed=0, keep_trace_records=True,
                          trace_record_limit=10)
    assert explicit.trace.record_limit == 10
    plain = SimRuntime(seed=0)
    assert plain.trace.record_limit is None


def test_telemetry_summary_and_formatting():
    trace = TraceLog()
    telemetry = Telemetry(trace)
    telemetry.metrics.counter("gateway.forwarded").inc(2)
    telemetry.metrics.histogram("bench.latency").record(0.004)
    trace.emit(0.0, "net.send", {"src": "a", "dst": "b", "port": "p"}, 64)
    summary = telemetry.summary()
    assert summary["recorder"]["recorded"] == 1
    assert summary["metrics"]["gateway.forwarded"] == 2
    lines = format_summary(telemetry)
    text = "\n".join(lines)
    assert "net.send" in text and "bench.latency" in text
    assert "flight recorder" in text
