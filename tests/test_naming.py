"""Tests for the Naming Service, unreplicated and replicated."""

import pytest

from repro.core import EternalSystem
from repro.orb import ORB, ApplicationError
from repro.orb.naming import NamingContext, format_name, parse_name
from repro.orb.orb_core import wait_for
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import Network, Simulator
from repro.workloads import Counter


# ----------------------------------------------------------------------
# Name parsing
# ----------------------------------------------------------------------

def test_parse_and_format_round_trip():
    for name in ("a", "a.kind", "a/b", "ctx.dir/obj.service", "x.y/z"):
        assert format_name(parse_name(name)) == name


def test_parse_rejects_malformed_names():
    for bad in ("", "/", "a/", "/a", "a//b", ".kind"):
        with pytest.raises(ApplicationError):
            parse_name(bad)


# ----------------------------------------------------------------------
# Local servant behaviour
# ----------------------------------------------------------------------

def test_bind_resolve_unbind():
    naming = NamingContext()
    naming.bind("counter", "IOR:00")
    assert naming.resolve("counter") == "IOR:00"
    naming.unbind("counter")
    with pytest.raises(ApplicationError):
        naming.resolve("counter")


def test_bind_conflict_and_rebind():
    naming = NamingContext()
    naming.bind("x", "IOR:01")
    with pytest.raises(ApplicationError):
        naming.bind("x", "IOR:02")
    naming.rebind("x", "IOR:02")
    assert naming.resolve("x") == "IOR:02"


def test_contexts_and_listing():
    naming = NamingContext()
    naming.bind_new_context("apps")
    naming.bind("apps/counter.service", "IOR:0a")
    naming.bind("apps/bank.service", "IOR:0b")
    naming.bind("top", "IOR:0c")
    assert naming.list_bindings() == [("apps", "context"), ("top", "object")]
    assert naming.list_bindings("apps") == [
        ("bank.service", "object"), ("counter.service", "object"),
    ]
    with pytest.raises(ApplicationError):
        naming.bind("missing-ctx/x", "IOR:0d")  # parent does not exist
    with pytest.raises(ApplicationError):
        naming.unbind("apps")  # context not empty
    naming.unbind("apps/counter.service")
    naming.unbind("apps/bank.service")
    naming.unbind("apps")
    assert naming.list_bindings() == [("top", "object")]


def test_state_round_trip():
    naming = NamingContext()
    naming.bind_new_context("ctx")
    naming.bind("ctx/obj.kind", "IOR:ff")
    clone = NamingContext()
    clone.set_state(naming.get_state())
    assert clone.resolve("ctx/obj.kind") == "IOR:ff"
    assert clone.list_bindings("ctx") == [("obj.kind", "object")]


# ----------------------------------------------------------------------
# Over the ORB, unreplicated
# ----------------------------------------------------------------------

def test_naming_over_orb():
    sim = Simulator()
    net = Network(sim)
    server = ORB(net, net.add_node("ns"))
    client = ORB(net, net.add_node("client"))
    ior = server.poa.activate(NamingContext())
    stub = client.stub(ior)
    wait_for(sim, stub.bind("service", "IOR:42"))
    assert wait_for(sim, stub.resolve("service")) == "IOR:42"


# ----------------------------------------------------------------------
# As a replicated object group (the realistic deployment)
# ----------------------------------------------------------------------

def test_replicated_naming_service_end_to_end():
    system = EternalSystem(["n1", "n2", "n3"]).start()
    system.stabilize()
    naming_ior = system.create_replicated(
        "naming", NamingContext, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    counter_ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.WARM_PASSIVE),
    )
    system.run_for(0.5)
    naming = system.stub("n3", naming_ior)
    # A server binds its replicated reference; a client bootstraps from it.
    system.call(naming.bind("counter.service", counter_ior.to_string()))
    resolved = system.call(naming.resolve("counter.service"))
    counter = system.stub("n3", resolved)
    assert system.call(counter.increment(3)) == 3
    # The naming state is replicated: survive a naming replica crash.
    system.crash("n1")
    system.stabilize()
    assert system.call(naming.resolve("counter.service")) == resolved
