"""Adversarial failure injection: crashes at the worst moments.

These tests aim crashes and partitions at the windows where the
mechanisms are most exposed: during state transfer, during failover,
at the sponsor, at the joiner, and under background message loss.
"""

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import LinkProfile
from repro.workloads import Counter, KeyValueStore


def fresh_system(nodes, seed=0, profile=None):
    system = EternalSystem(list(nodes), seed=seed, profile=profile).start()
    system.stabilize()
    return system


def test_sponsor_crash_during_state_transfer():
    """The state sponsor dies mid-transfer; the joiner must still be
    initialized (by the next surviving sponsor after the view change)."""
    system = fresh_system(["n1", "n2", "n3"])
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE, state_transfer="incremental",
                    chunk_bytes=512),
    )
    system.run_for(0.5)
    stub = system.stub("n3", ior)
    system.call(stub.preload(200, 128), timeout=120.0)
    system.manager.add_member("kv", "n3")
    # Kill the sponsor (n1, lowest surviving member) almost immediately,
    # likely mid-chunk-stream.
    system.run_for(0.004)
    system.crash("n1")
    system.run_for(10.0)
    system.stabilize()
    system.run_for(5.0)
    replica = system.engine("n3").replica("kv")
    assert replica is not None and replica.ready
    assert replica.servant.data == system.engine("n2").replica("kv").servant.data


def test_joiner_crash_during_state_transfer():
    """The joining replica dies mid-transfer; the group must be unharmed."""
    system = fresh_system(["n1", "n2", "n3"])
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    stub = system.stub("n1", ior)
    system.call(stub.preload(100, 64), timeout=60.0)
    system.manager.add_member("kv", "n3")
    system.run_for(0.002)
    system.crash("n3")
    system.run_for(5.0)
    system.stabilize()
    assert system.call(stub.put("after", 1)) is True
    states = system.states_of("kv")
    assert states["n1"] == states["n2"]
    assert "after" in states["n1"]


def test_double_crash_during_passive_failover():
    """The primary dies; the promoted backup dies during its catch-up;
    the third replica must finish the job."""
    system = fresh_system(["n1", "n2", "n3", "c"])
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.WARM_PASSIVE),
    )
    system.run_for(0.5)
    stub = system.stub("c", ior)
    for _ in range(3):
        system.call(stub.increment(1), timeout=60.0)
    system.crash("n1")
    system.run_for(0.075)  # mid-membership-change / early failover window
    system.crash("n2")
    system.run_for(10.0)
    system.stabilize()
    assert system.call(stub.increment(1), timeout=60.0) == 4
    assert system.states_of("ctr")["n3"] == 4


def test_partition_during_passive_failover():
    """The primary is partitioned away (not crashed): both sides promote a
    primary; at remerge the sides reconcile without losing operations."""
    system = fresh_system(["n1", "n2", "n3", "n4"])
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3", "n4"],
        GroupPolicy(style=ReplicationStyle.WARM_PASSIVE),
    )
    system.run_for(0.5)
    stub_majority = system.stub("n2", ior)
    system.call(stub_majority.increment(1), timeout=60.0)
    system.partition([("n1",), ("n2", "n3", "n4")])
    system.stabilize(timeout=10.0)
    system.run_for(0.5)
    # The majority side promoted n2 and keeps serving.
    assert system.call(stub_majority.increment(1), timeout=60.0) == 2
    # The isolated old primary also serves its side (singleton component).
    stub_minority = system.stub("n1", ior)
    assert system.call(stub_minority.increment(10), timeout=60.0) == 11
    system.merge()
    system.stabilize(timeout=10.0)
    system.run_for(3.0)
    # n1's side is primary at remerge (lowest id): its state is adopted and
    # the majority side's op is replayed as fulfillment.
    states = system.states_of("ctr")
    assert len(set(states.values())) == 1
    # All three logical increments are reflected exactly once: 1 + 1 + 10.
    assert list(states.values())[0] == 12


def test_replication_under_background_message_loss():
    system = fresh_system(["n1", "n2", "n3", "c"], seed=13,
                          profile=LinkProfile(loss=0.03))
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(1.0)
    stub = system.stub("c", ior)
    for expected in range(1, 21):
        assert system.call(stub.increment(1), timeout=60.0) == expected
    system.run_for(2.0)
    assert set(system.states_of("ctr").values()) == {20}


def test_crash_and_recover_and_rehost_full_cycle():
    """A node crashes, recovers with empty state, is re-hosted, catches up
    by state transfer, and then survives being the only replica left."""
    system = fresh_system(["n1", "n2", "n3"])
    ior = system.create_replicated(
        "kv", KeyValueStore, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    stub = system.stub("n1", ior)
    system.call(stub.put("k", "v1"))
    system.crash("n3")
    system.stabilize()
    system.call(stub.put("k", "v2"))
    system.recover("n3")
    system.stabilize()
    system.manager.records["kv"].locations.remove("n3")
    system.manager.add_member("kv", "n3")
    system.run_for(2.0)
    # n3 caught up; now kill everyone else.
    system.crash("n1")
    system.stabilize()
    system.crash("n2")
    system.stabilize()
    survivor = system.stub("n3", ior)
    assert system.call(survivor.get("k"), timeout=60.0) == "v2"


def test_rapid_crash_recover_flapping():
    """A node that crashes and recovers repeatedly must not wedge the
    group or corrupt the survivors."""
    system = fresh_system(["n1", "n2", "n3"], seed=2)
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    stub = system.stub("n3", ior)
    count = 0
    for cycle in range(3):
        count += 1
        assert system.call(stub.increment(1), timeout=60.0) == count
        system.crash("n2")
        system.run_for(0.2)
        system.recover("n2")
        system.run_for(0.5)
    system.stabilize()
    count += 1
    assert system.call(stub.increment(1), timeout=60.0) == count
    assert system.states_of("ctr")["n1"] == count
