"""Tests for determinism enforcement: dispatchers and sanitization.

These validate the paper's lesson directly: unconstrained multithreaded
dispatch and unsanitized environment reads make active replicas diverge;
Eternal's enforced regime keeps them consistent.
"""

from repro.core import EternalSystem
from repro.determinism import (
    ConcurrentDispatcher,
    DeterministicDispatcher,
    SanitizedEnvironment,
    make_dispatcher,
)
from repro.orb.idl import Servant, operation
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import Network, Simulator
from repro.state.checkpointable import Checkpointable


class _Task:
    def __init__(self, name, cost, log, sim):
        self.name = name
        self.cost = cost
        self._log = log
        self._sim = sim

    def run(self, done):
        self._log.append((self.name, self._sim.now))
        done()


def test_deterministic_dispatcher_is_fifo():
    sim = Simulator()
    net = Network(sim)
    node = net.add_node("n")
    dispatcher = DeterministicDispatcher(sim, node)
    log = []
    for index in range(5):
        dispatcher.submit(_Task(index, 0.01, log, sim))
    sim.run_for(1.0)
    assert [name for name, _t in log] == [0, 1, 2, 3, 4]
    # Serial execution: starts separated by at least the cost.
    times = [t for _n, t in log]
    assert all(b - a >= 0.01 - 1e-9 for a, b in zip(times, times[1:]))


def test_concurrent_dispatcher_overlaps():
    sim = Simulator(seed=5)
    net = Network(sim)
    node = net.add_node("n")
    dispatcher = ConcurrentDispatcher(sim, node)
    log = []
    for index in range(20):
        dispatcher.submit(_Task(index, 0.01, log, sim))
    sim.run_for(1.0)
    assert len(log) == 20
    # Random per-task skew reorders completions.
    assert [name for name, _t in log] != sorted(name for name, _t in log)


def test_make_dispatcher_validates_policy():
    sim = Simulator()
    net = Network(sim)
    node = net.add_node("n")
    assert isinstance(make_dispatcher("deterministic", sim, node),
                      DeterministicDispatcher)
    assert isinstance(make_dispatcher("concurrent", sim, node),
                      ConcurrentDispatcher)
    import pytest

    with pytest.raises(ValueError):
        make_dispatcher("threads", sim, node)


def test_sanitized_environment_identical_across_nodes():
    sim = Simulator(seed=1)
    net = Network(sim)
    env_a = SanitizedEnvironment(sim, net.add_node("a"), sanitized=True)
    env_b = SanitizedEnvironment(sim, net.add_node("b"), sanitized=True)
    for op in [("c", "g", 1), ("n", ("c", "g", 1), 2)]:
        env_a.current_operation_id = op
        env_b.current_operation_id = op
        assert env_a.time() == env_b.time()
        assert env_a.random() == env_b.random()
        assert env_a.randint(0, 100) == env_b.randint(0, 100)
        assert env_a.unique_id() == env_b.unique_id()


def test_sanitized_values_differ_across_operations():
    sim = Simulator(seed=1)
    net = Network(sim)
    env = SanitizedEnvironment(sim, net.add_node("a"), sanitized=True)
    env.current_operation_id = ("c", "g", 1)
    first = env.random()
    env.current_operation_id = ("c", "g", 2)
    assert env.random() != first


def test_unsanitized_environment_diverges_across_nodes():
    sim = Simulator(seed=1)
    net = Network(sim)
    env_a = SanitizedEnvironment(sim, net.add_node("a"), sanitized=False)
    env_b = SanitizedEnvironment(sim, net.add_node("b"), sanitized=False)
    env_a.current_operation_id = env_b.current_operation_id = ("c", "g", 1)
    assert env_a.time() != env_b.time()  # clock skew differs per node


class TimestampRecorder(Servant, Checkpointable):
    """Records the 'current time' it observes -- a divergence amplifier."""

    def __init__(self):
        self.stamps = []

    @operation()
    def stamp(self):
        self.stamps.append(self.env.time())
        return self.stamps[-1]

    def get_state(self):
        return list(self.stamps)

    def set_state(self, state):
        self.stamps = list(state)


def _run_timestamps(sanitize):
    system = EternalSystem(["n1", "n2", "n3"], seed=9).start()
    system.stabilize()
    policy = GroupPolicy(style=ReplicationStyle.ACTIVE,
                         sanitize_environment=sanitize)
    ior = system.create_replicated(
        "ts", TimestampRecorder, ["n1", "n2", "n3"], policy
    )
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    for _ in range(5):
        system.call(stub.stamp())
    return list(system.states_of("ts").values())


def test_replicas_agree_with_sanitized_time():
    states = _run_timestamps(sanitize=True)
    assert states[0] == states[1] == states[2]


def test_replicas_diverge_with_unsanitized_time():
    states = _run_timestamps(sanitize=False)
    assert not (states[0] == states[1] == states[2])
