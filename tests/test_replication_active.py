"""End-to-end tests of active replication."""

import pytest

from repro.core import EternalSystem
from repro.orb import ApplicationError
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import BankAccount, Counter


def active_system(nodes=("n1", "n2", "n3"), seed=0):
    system = EternalSystem(list(nodes), seed=seed).start()
    system.stabilize()
    return system


def active_policy(**overrides):
    return GroupPolicy(style=ReplicationStyle.ACTIVE, **overrides)


def test_invocation_on_replicated_object():
    system = active_system()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    assert system.call(stub.increment(5)) == 5
    assert system.call(stub.read()) == 5


def test_all_replicas_execute_and_agree():
    system = active_system()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    for i in range(10):
        system.call(stub.increment(1))
    states = system.states_of("ctr")
    assert states == {"n1": 10, "n2": 10, "n3": 10}


def test_each_operation_executed_once_per_replica():
    system = active_system()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n2", system.manager.ior_of("ctr"))
    for _ in range(5):
        system.call(stub.increment(1))
    for replica in system.replicas_of("ctr").values():
        assert replica.ops_applied == 5


def test_client_on_non_member_node():
    system = active_system(("n1", "n2", "n3", "client"))
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("client", ior)
    assert system.call(stub.increment(7)) == 7


def test_replica_crash_transparent_to_client():
    system = active_system()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    assert system.call(stub.increment(1)) == 1
    system.crash("n3")
    system.stabilize()
    assert system.call(stub.increment(1)) == 2
    states = system.states_of("ctr")
    assert states["n1"] == 2 and states["n2"] == 2


def test_crash_of_all_but_one_replica_still_serves():
    system = active_system()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    system.call(stub.increment(1))
    system.crash("n2")
    system.crash("n3")
    system.stabilize()
    assert system.call(stub.increment(1)) == 2


def test_user_exceptions_replicate_consistently():
    system = active_system()
    ior = system.create_replicated(
        "acct", lambda: BankAccount("alice", 10), ["n1", "n2", "n3"], active_policy()
    )
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    with pytest.raises(ApplicationError):
        system.call(stub.withdraw(100))
    # The failed operation must not have corrupted any replica.
    for state in system.states_of("acct").values():
        assert state["balance"] == 10


def test_concurrent_clients_totally_ordered():
    system = active_system(("n1", "n2", "n3", "c1", "c2"))
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub1 = system.stub("c1", ior)
    stub2 = system.stub("c2", ior)
    futures = []
    for _ in range(10):
        futures.append(stub1.increment(1))
        futures.append(stub2.increment(1))
    system.run_for(3.0)
    results = sorted(f.result() for f in futures)
    assert results == list(range(1, 21))
    assert set(system.states_of("ctr").values()) == {20}


def test_duplicate_replies_suppressed():
    system = active_system()
    system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", system.manager.ior_of("ctr"))
    for _ in range(5):
        system.call(stub.increment(1))
    # 3 replicas executed each op; exactly one reply per op must have been
    # accepted, and the client's counter reflects single execution.
    assert system.call(stub.read()) == 5
    stats = [
        r.tables.suppressed_replies for r in system.replicas_of("ctr").values()
    ]
    # With three replicas racing, some replies are suppressed at senders
    # (cancelled while queued) -- at least the accounting must be present.
    assert all(s >= 0 for s in stats)


def test_oneway_operation_executes_on_all_replicas():
    system = active_system()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", ior, interface=Counter)
    future = stub.poke()
    assert future.done() and future.result() is None
    system.run_for(1.0)
    assert set(system.states_of("ctr").values()) == {1}


def test_recovered_node_rehosted_replica_catches_up():
    system = active_system()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2", "n3"], active_policy())
    system.run_for(0.3)
    stub = system.stub("n1", ior)
    system.call(stub.increment(1))
    system.crash("n3")
    system.stabilize()
    system.call(stub.increment(1))
    system.recover("n3")
    system.stabilize()
    # Management plane re-hosts the replica; it initializes by state transfer.
    system.manager.records["ctr"].locations.remove("n3")
    system.manager.add_member("ctr", "n3")
    system.run_for(1.0)
    system.call(stub.increment(1))
    system.run_for(1.0)
    states = system.states_of("ctr")
    assert states == {"n1": 3, "n2": 3, "n3": 3}
