"""Tests for Totem ring formation and ordered delivery (no faults)."""

import pytest

from repro.simnet import LinkProfile
from repro.totem import TotemCluster
from repro.totem.events import RegularConfiguration


def app_payloads(cluster, node_id):
    return [
        d.payload for d in cluster.deliveries[node_id]
        if not (isinstance(d.payload, tuple) and d.payload and d.payload[0] == "announce")
    ]


def test_ring_forms_at_boot():
    cluster = TotemCluster(["n1", "n2", "n3"]).start()
    cluster.run_until_stable(timeout=2.0)
    rings = {p.installed_ring.key() for p in cluster.processors.values()}
    assert len(rings) == 1
    assert list(cluster.processors["n1"].installed_ring.members) == ["n1", "n2", "n3"]


def test_singleton_ring_forms():
    cluster = TotemCluster(["solo"]).start()
    cluster.run_until_stable(timeout=2.0)
    assert cluster.processors["solo"].installed_ring.members == ("solo",)


def test_regular_configuration_event_delivered():
    cluster = TotemCluster(["n1", "n2"]).start()
    cluster.run_until_stable(timeout=2.0)
    regulars = [
        e for e in cluster.configs["n1"] if isinstance(e, RegularConfiguration)
    ]
    assert regulars
    assert regulars[-1].members == ("n1", "n2")


def test_messages_delivered_to_all_in_same_order():
    cluster = TotemCluster(["n1", "n2", "n3"]).start()
    cluster.run_until_stable(timeout=2.0)
    for i in range(10):
        cluster.processors["n1"].send(("m", "n1", i))
        cluster.processors["n2"].send(("m", "n2", i))
        cluster.processors["n3"].send(("m", "n3", i))
    cluster.sim.run_for(1.0)
    sequences = [app_payloads(cluster, n) for n in ("n1", "n2", "n3")]
    assert len(sequences[0]) == 30
    assert sequences[0] == sequences[1] == sequences[2]


def test_sender_delivers_own_messages():
    cluster = TotemCluster(["n1", "n2"]).start()
    cluster.run_until_stable(timeout=2.0)
    cluster.processors["n1"].send("hello")
    cluster.sim.run_for(0.5)
    assert "hello" in app_payloads(cluster, "n1")


def test_messages_queued_before_ring_are_delivered():
    cluster = TotemCluster(["n1", "n2"])
    for processor in cluster.processors.values():
        processor.start()
    cluster.processors["n1"].send("early")
    cluster.run_until_stable(timeout=2.0)
    cluster.sim.run_for(0.5)
    assert app_payloads(cluster, "n2") == ["early"]


def test_safe_delivery_waits_for_full_rotation_then_arrives():
    cluster = TotemCluster(["n1", "n2", "n3"]).start()
    cluster.run_until_stable(timeout=2.0)
    cluster.processors["n1"].send("s1", guarantee="safe")
    cluster.processors["n2"].send("a1", guarantee="agreed")
    cluster.sim.run_for(1.0)
    for node_id in ("n1", "n2", "n3"):
        payloads = app_payloads(cluster, node_id)
        assert "s1" in payloads and "a1" in payloads
    # Total order holds across guarantees: all nodes agree.
    assert (
        app_payloads(cluster, "n1")
        == app_payloads(cluster, "n2")
        == app_payloads(cluster, "n3")
    )


def test_safe_message_on_singleton_ring_is_delivered():
    cluster = TotemCluster(["solo"]).start()
    cluster.run_until_stable(timeout=2.0)
    cluster.processors["solo"].send("s", guarantee="safe")
    cluster.sim.run_for(0.5)
    assert app_payloads(cluster, "solo") == ["s"]


def test_invalid_guarantee_rejected():
    cluster = TotemCluster(["n1"]).start()
    with pytest.raises(ValueError):
        cluster.processors["n1"].send("x", guarantee="fifo")


def test_large_burst_respects_window_and_delivers_all():
    cluster = TotemCluster(["n1", "n2"]).start()
    cluster.run_until_stable(timeout=2.0)
    for i in range(500):
        cluster.processors["n1"].send(i, size=32)
    cluster.sim.run_for(3.0)
    assert app_payloads(cluster, "n2") == list(range(500))


def test_delivery_under_message_loss():
    profile = LinkProfile(loss=0.05)
    cluster = TotemCluster(["n1", "n2", "n3"], seed=11, profile=profile).start()
    cluster.run_until_stable(timeout=5.0)
    for i in range(50):
        cluster.processors["n1"].send(("x", i))
    cluster.sim.run_for(5.0)
    expected = [("x", i) for i in range(50)]
    for node_id in ("n1", "n2", "n3"):
        assert app_payloads(cluster, node_id) == expected


def test_two_clusters_same_seed_identical_behaviour():
    def run():
        cluster = TotemCluster(["n1", "n2", "n3"], seed=9).start()
        cluster.run_until_stable(timeout=2.0)
        for i in range(20):
            cluster.processors["n2"].send(i)
        cluster.sim.run_for(1.0)
        return app_payloads(cluster, "n3"), cluster.sim.trace.snapshot()

    first, trace_a = run()
    second, trace_b = run()
    assert first == second
    assert trace_a == trace_b
