"""The 16-seed crash+partition campaign sweep, pinned as a regression test.

ROADMAP's residual item tracks exactly-once violations under extreme
churn: some seeds of the E12 campaign still lose or duplicate
operations when a crash lands inside a remerge's fulfillment replay.
This test pins the sweep at a reduced, tier-1-viable scale (a few
seconds of virtual time per seed instead of E12's full campaign) so
the failing set is tracked empirically:

- passing seeds must stay green (a regression in replication,
  remerge, or the read path shows up here first);
- failing seeds are ``xfail(strict=True)`` — the day the
  reconciliation fix lands, those marks fail and must be removed.

The scale is pinned explicitly (not BENCH_SMOKE) so the failing set is
stable: campaign generation derives from the spec's duration and the
traffic from rate x duration, and both are part of the regression's
identity.  The failing seeds at THIS scale differ from the full-scale
E12 sweep (there, seeds 2 and 4 fail and seed 5 is impractically
slow); same bug class, different schedules.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import bench_e12_chaos_oltp as e12  # noqa: E402

# The pinned sweep scale.  Changing any of these changes every seed's
# fault schedule and traffic interleaving — re-sweep and update
# FAILING_SEEDS if you touch them.
SCALE = {
    "RATE": 6,
    "TRAFFIC_DURATION": 2.0,
    "CAMPAIGN_DURATION": 2.0,
    "SETTLE": 4.0,
}

SEEDS = range(16)

# Empirically failing at the pinned scale (see module docstring).
# The Join-damping change (membership fan-out pacing under churn)
# legitimately re-timed every churn-heavy schedule: seed 9 (previously
# xfail no-lost-operation) now passes and seed 15 now trips
# convergence.  Same bug class, different schedule — the underlying
# remerge-replay provenance bug is still open in ROADMAP.
FAILING_SEEDS = {
    15: "replica-convergence: a crash lands inside the remerge's "
        "fulfillment replay and one side's replay never commits "
        "(ROADMAP: residual exactly-once violations under extreme "
        "churn)",
}

# Seeds whose schedules trigger a pathological blowup.  Seed 5 used to
# live here: a cross-ring membership-churn broadcast delivery storm
# (every Join broadcast hammered both rings' co-hosted endpoints at
# storm rates — net.deliver ~1.15M and totem.ring.mismatch ~386k per
# 30s of wall clock) cost ~345s / ~3 GB RSS at this scale.  The
# token-paced Join damping (`TotemConfig.join_damping`: paced,
# mostly-unicast Join resends beyond the gather burst) collapsed it to
# ~16s / ~110 MB, and the trace-retention cap bounds the RSS tail, so
# seed 5 runs normally again.
SLOW_SEEDS = {}


@pytest.fixture()
def pinned_scale():
    saved = {name: getattr(e12, name) for name in SCALE}
    for name, value in SCALE.items():
        setattr(e12, name, value)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(e12, name, value)


def _seed_params():
    for seed in SEEDS:
        if seed in SLOW_SEEDS:
            yield pytest.param(
                seed, marks=pytest.mark.skip(reason=SLOW_SEEDS[seed])
            )
        elif seed in FAILING_SEEDS:
            yield pytest.param(
                seed,
                marks=pytest.mark.xfail(
                    strict=True, reason=FAILING_SEEDS[seed]
                ),
            )
        else:
            yield pytest.param(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", _seed_params())
def test_campaign_seed(pinned_scale, seed):
    _campaign, report, _slo = e12.run_sim(seed=seed)
    assert report.ok, "invariants violated: %s" % sorted(
        {violation.invariant for violation in report.violations}
    )
