"""The 16-seed crash+partition campaign sweep, pinned as a regression test.

ROADMAP's residual item tracks exactly-once violations under extreme
churn: some seeds of the E12 campaign still lose or duplicate
operations when a crash lands inside a remerge's fulfillment replay.
This test pins the sweep at a reduced, tier-1-viable scale (a few
seconds of virtual time per seed instead of E12's full campaign) so
the failing set is tracked empirically:

- passing seeds must stay green (a regression in replication,
  remerge, or the read path shows up here first);
- failing seeds are ``xfail(strict=True)`` — the day the
  reconciliation fix lands, those marks fail and must be removed.

The scale is pinned explicitly (not BENCH_SMOKE) so the failing set is
stable: campaign generation derives from the spec's duration and the
traffic from rate x duration, and both are part of the regression's
identity.  The failing seeds at THIS scale differ from the full-scale
E12 sweep (there, seeds 2 and 4 fail and seed 5 is impractically
slow); same bug class, different schedules.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "benchmarks"))

import bench_e12_chaos_oltp as e12  # noqa: E402

# The pinned sweep scale.  Changing any of these changes every seed's
# fault schedule and traffic interleaving — re-sweep and update
# FAILING_SEEDS if you touch them.
SCALE = {
    "RATE": 6,
    "TRAFFIC_DURATION": 2.0,
    "CAMPAIGN_DURATION": 2.0,
    "SETTLE": 4.0,
}

SEEDS = range(16)

# Empirically failing at the pinned scale (see module docstring).
FAILING_SEEDS = {
    9: "no-lost-operation: a crash lands inside the remerge's "
       "fulfillment replay and the restock never commits (ROADMAP: "
       "residual exactly-once violations under extreme churn)",
}

# Seeds whose schedules trigger a pathological blowup: seed 5 converges
# (ok=True) but takes ~345s of wall clock and ~3 GB RSS at this scale
# (>15 min at full E12 scale).  Skipped, not xfailed — the invariants
# hold; the cost does not.  Instrumented with the runtime-wide
# `totem.retransmit.budget` counter (PR 9): the run spends ~1360
# retransmissions, inside the healthy 700–1700 band of passing seeds,
# so this is NOT a retransmission storm.  It is a cross-ring
# membership-churn broadcast delivery storm: virtual time stalls around
# t=3.9–5.3 while per-30s-wall deltas show net.deliver up to ~1.15M and
# totem.ring.mismatch up to ~386k (every membership broadcast hits both
# rings' co-hosted endpoints and is dropped by the mux, at storm rates),
# plus net.drop.unreachable floods; the RSS is retained trace records
# (keep_trace_records=True).  Tracked in ROADMAP's residual-churn item.
SLOW_SEEDS = {
    5: "pathological blowup: ~345s / ~3 GB RSS at the pinned scale",
}


@pytest.fixture()
def pinned_scale():
    saved = {name: getattr(e12, name) for name in SCALE}
    for name, value in SCALE.items():
        setattr(e12, name, value)
    try:
        yield
    finally:
        for name, value in saved.items():
            setattr(e12, name, value)


def _seed_params():
    for seed in SEEDS:
        if seed in SLOW_SEEDS:
            yield pytest.param(
                seed, marks=pytest.mark.skip(reason=SLOW_SEEDS[seed])
            )
        elif seed in FAILING_SEEDS:
            yield pytest.param(
                seed,
                marks=pytest.mark.xfail(
                    strict=True, reason=FAILING_SEEDS[seed]
                ),
            )
        else:
            yield pytest.param(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", _seed_params())
def test_campaign_seed(pinned_scale, seed):
    _campaign, report, _slo = e12.run_sim(seed=seed)
    assert report.ok, "invariants violated: %s" % sorted(
        {violation.invariant for violation in report.violations}
    )
