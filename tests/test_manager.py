"""Tests for the ReplicationManager management plane."""

import pytest

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationManager, ReplicationStyle
from repro.workloads import Counter


def system_with_spare(seed=0):
    system = EternalSystem(["n1", "n2", "n3", "spare"], seed=seed).start()
    system.stabilize()
    return system


def test_create_object_hosts_one_replica_per_location():
    system = system_with_spare()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2"])
    assert ior.is_group_reference()
    assert system.manager.locations_of("ctr") == ["n1", "n2"]
    assert "ctr" in system.engine("n1").replicas
    assert "ctr" in system.engine("n2").replicas
    assert "ctr" not in system.engine("n3").replicas


def test_each_replica_gets_its_own_servant_instance():
    system = system_with_spare()
    system.create_replicated("ctr", Counter, ["n1", "n2"])
    servant_1 = system.engine("n1").replica("ctr").servant
    servant_2 = system.engine("n2").replica("ctr").servant
    assert servant_1 is not servant_2


def test_duplicate_group_rejected():
    system = system_with_spare()
    system.create_replicated("ctr", Counter, ["n1"])
    with pytest.raises(ValueError):
        system.create_replicated("ctr", Counter, ["n2"])


def test_add_member_initializes_by_state_transfer():
    system = system_with_spare()
    ior = system.create_replicated("ctr", Counter, ["n1", "n2"])
    system.run_for(0.5)
    stub = system.stub("n3", ior)
    system.call(stub.increment(9))
    system.manager.add_member("ctr", "n3")
    system.run_for(1.0)
    replica = system.engine("n3").replica("ctr")
    assert replica.ready
    assert replica.servant.value == 9
    assert system.manager.locations_of("ctr") == ["n1", "n2", "n3"]


def test_remove_member():
    system = system_with_spare()
    system.create_replicated("ctr", Counter, ["n1", "n2"])
    system.run_for(0.5)
    system.manager.remove_member("ctr", "n2")
    system.run_for(0.5)
    assert system.manager.locations_of("ctr") == ["n1"]
    assert "ctr" not in system.engine("n2").replicas


def test_handle_fault_places_on_spare_only_below_degree():
    system = system_with_spare()
    system.manager.register_spare("spare")
    system.create_replicated(
        "low", Counter, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE, min_replicas=2),
    )
    system.create_replicated(
        "ok", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE, min_replicas=2),
    )
    system.run_for(0.5)
    system.crash("n2")
    system.stabilize()
    placements = system.manager.handle_fault("n2")
    # "low" dropped to 1 < 2 -> placed; "ok" still has 2 -> untouched.
    assert placements == [("low", "spare")]
    assert system.manager.locations_of("low") == ["n1", "spare"]
    assert system.manager.locations_of("ok") == ["n1", "n3"]


def test_handle_fault_without_spare_is_graceful():
    system = system_with_spare()
    system.create_replicated(
        "ctr", Counter, ["n1", "n2"],
        GroupPolicy(min_replicas=2),
    )
    system.run_for(0.5)
    system.crash("n2")
    system.stabilize()
    assert system.manager.handle_fault("n2") == []


def test_spare_not_reused_for_group_it_already_hosts():
    system = system_with_spare()
    system.manager.register_spare("spare")
    system.create_replicated(
        "ctr", Counter, ["n1", "spare"],
        GroupPolicy(min_replicas=2),
    )
    system.run_for(0.5)
    system.crash("n1")
    system.stabilize()
    # The only spare already hosts the group: nothing can be placed.
    assert system.manager.handle_fault("n1") == []


def test_registry_validation():
    manager = ReplicationManager()
    with pytest.raises(ValueError):
        manager.register_spare("ghost")
    with pytest.raises(ValueError):
        manager.ior_of("ghost-group")
    with pytest.raises(ValueError):
        manager.add_member("ghost-group", "n1")
