"""The sharded replication domain: multiple Totem rings per cluster.

The domain's object groups are placed onto independent shard rings (by
deterministic hash or an explicit pin); each ring orders only its own
groups' traffic, so one ring's faults or load do not stall the others,
while operation identifiers keep cross-ring invocations exactly-once
domain-wide.
"""

import pytest

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle, RingMap
from repro.workloads import BankAccount, Counter


# ----------------------------------------------------------------------
# RingMap placement
# ----------------------------------------------------------------------

def test_placement_is_deterministic_and_covers_rings():
    rings = RingMap((0, 1, 2, 3))
    names = ["grp-%d" % n for n in range(64)]
    placed = {name: rings.placement(name) for name in names}
    assert placed == {name: rings.placement(name) for name in names}
    assert set(placed.values()) == {0, 1, 2, 3}


def test_single_ring_map_places_everything_on_ring_zero():
    rings = RingMap()
    assert rings.ring_ids == (0,)
    assert rings.ring_of("anything") == 0


def test_assignment_pins_and_conflicts_raise():
    rings = RingMap((0, 1))
    rings.assign("ctr", 1)
    assert rings.ring_of("ctr") == 1
    assert rings.is_assigned("ctr")
    assert not rings.is_assigned("other")
    rings.assign("ctr", 1)  # re-assigning the same ring is idempotent
    with pytest.raises(ValueError):
        rings.assign("ctr", 0)
    with pytest.raises(ValueError):
        rings.assign("new", 7)  # not a ring of the topology


# ----------------------------------------------------------------------
# Ring-parallel topologies (every node runs every ring)
# ----------------------------------------------------------------------

def parallel_system(rings=2, seed=0):
    system = EternalSystem(["n1", "n2", "n3"], seed=seed, rings=rings).start()
    system.stabilize()
    return system


def test_groups_pinned_to_different_rings_both_serve():
    system = parallel_system()
    ior0 = system.create_replicated(
        "g0", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
    )
    ior1 = system.create_replicated(
        "g1", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=1,
    )
    system.run_for(0.5)
    assert system.ring_map.ring_of("g0") == 0
    assert system.ring_map.ring_of("g1") == 1
    assert system.call(system.stub("n1", ior0).increment(2)) == 2
    assert system.call(system.stub("n2", ior1).increment(5)) == 5
    assert set(system.states_of("g0").values()) == {2}
    assert set(system.states_of("g1").values()) == {5}


def test_default_placement_needs_no_pin():
    system = parallel_system(rings=4)
    ior = system.create_replicated(
        "hash-placed", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    assert system.ring_map.ring_of("hash-placed") in (0, 1, 2, 3)
    assert system.call(system.stub("n3", ior).increment(1)) == 1


def test_ring_traffic_does_not_cross_talk():
    """Each ring orders only its own groups: delivers carry the ring id
    and no ring-mismatch drops occur in a healthy co-hosted topology."""
    system = parallel_system()
    ior0 = system.create_replicated(
        "g0", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
    )
    ior1 = system.create_replicated(
        "g1", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=1,
    )
    system.run_for(0.5)
    system.sim.trace.keep_records = True
    system.call(system.stub("n1", ior0).increment(1))
    system.call(system.stub("n1", ior1).increment(1))
    rings_seen = {
        event.detail["ring_id"]
        for event in system.sim.trace.matching("totem.deliver")
    }
    assert rings_seen == {0, 1}
    assert system.sim.trace.count("totem.ring.mismatch") == 0


def test_spans_attribute_invocations_to_rings():
    system = parallel_system()
    ior0 = system.create_replicated(
        "g0", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
    )
    ior1 = system.create_replicated(
        "g1", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=1,
    )
    system.run_for(0.5)
    system.call(system.stub("n1", ior0).increment(1))
    system.call(system.stub("n1", ior1).increment(1))
    system.run_for(0.5)
    spans = system.telemetry.spans
    assert {span.ring for span in spans.complete_spans()} == {0, 1}
    per_ring0 = spans.layer_durations(ring=0)
    per_ring1 = spans.layer_durations(ring=1)
    assert any(per_ring0.values()) and any(per_ring1.values())


def test_cross_ring_nested_invocation_exactly_once():
    """A replicated group on ring 0 invokes a group on ring 1: ordering is
    per-ring but the operation identifiers keep the nested deposit
    exactly-once domain-wide, and the reply crosses back to the caller's
    ring."""
    system = EternalSystem(["n1", "n2", "n3", "n4"], rings=2).start()
    system.stabilize()
    ior_a = system.create_replicated(
        "acct-a", lambda: BankAccount("alice", 100), ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
    )
    ior_b = system.create_replicated(
        "acct-b", lambda: BankAccount("bob", 0), ["n3", "n4"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=1,
    )
    system.run_for(0.5)
    stub = system.stub("n1", ior_a)
    assert system.call(stub.transfer(ior_b.to_string(), 30), timeout=60.0) == 30
    system.run_for(1.0)
    for state in system.states_of("acct-a").values():
        assert state["balance"] == 70
    for state in system.states_of("acct-b").values():
        assert state["balance"] == 30
        # Exactly one deposit despite both of a's replicas invoking it.
        assert state["history"] == [["deposit", 30]]


# ----------------------------------------------------------------------
# Disjoint rings: fault isolation
# ----------------------------------------------------------------------

DISJOINT = {0: ["n1", "n2", "n3"], 1: ["n4", "n5", "n6"]}


def disjoint_system(seed=0):
    system = EternalSystem(
        ["n1", "n2", "n3", "n4", "n5", "n6"], seed=seed, rings=DISJOINT
    ).start()
    system.stabilize()
    ior0 = system.create_replicated(
        "g0", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
    )
    ior1 = system.create_replicated(
        "g1", Counter, ["n4", "n5", "n6"],
        GroupPolicy(style=ReplicationStyle.ACTIVE), ring=1,
    )
    system.run_for(0.5)
    return system, ior0, ior1


def test_disjoint_topology_runs_one_processor_per_ring():
    system, _ior0, _ior1 = disjoint_system()
    assert sorted(system.nodes["n1"].processors) == [0]
    assert sorted(system.nodes["n5"].processors) == [1]
    assert system.rings_of_node("n2") == (0,)
    assert system.rings_of_node("n6") == (1,)


def test_crash_in_one_ring_leaves_the_other_progressing():
    system, ior0, ior1 = disjoint_system()
    stub0 = system.stub("n1", ior0)
    stub1 = system.stub("n4", ior1)
    assert system.call(stub0.increment(1)) == 1
    assert system.call(stub1.increment(1)) == 1
    system.crash("n5")
    # Ring 0 progresses while ring 1 is mid-reconfiguration.
    assert system.call(stub0.increment(1)) == 2
    system.stabilize()
    # Ring 1 recovers with its surviving members.
    assert system.call(stub1.increment(1)) == 2
    assert set(system.states_of("g0").values()) == {2}
    assert system.states_of("g1")["n4"] == 2


def test_partition_in_one_ring_leaves_the_other_progressing():
    system, ior0, ior1 = disjoint_system()
    stub0 = system.stub("n1", ior0)
    stub1 = system.stub("n4", ior1)
    assert system.call(stub0.increment(1)) == 1
    assert system.call(stub1.increment(1)) == 1
    # Split ring 1's nodes apart; ring 0's component stays whole.
    system.partition([["n1", "n2", "n3", "n4"], ["n5", "n6"]])
    system.stabilize()
    for expected in (2, 3, 4):
        assert system.call(stub0.increment(1)) == expected
    system.merge()
    system.stabilize()
    system.run_for(1.0)
    assert system.call(stub1.increment(1)) == 2
    assert set(system.states_of("g0").values()) == {4}


def test_invoking_a_foreign_ring_group_raises():
    """A node that does not run a group's ring cannot multicast to it;
    external clients reach such groups through the gateway tier."""
    system, _ior0, ior1 = disjoint_system()
    with pytest.raises(ValueError):
        system.stub("n1", ior1).increment(1)


def test_create_replicated_rejects_locations_off_the_ring():
    system, _ior0, _ior1 = disjoint_system()
    with pytest.raises(ValueError):
        system.create_replicated(
            "bad", Counter, ["n1", "n4"],
            GroupPolicy(style=ReplicationStyle.ACTIVE), ring=0,
        )
