"""Tests for the process-group layer: group addressing and ordered views."""

from repro.totem import TotemCluster


def group_cluster(node_ids, seed=0):
    cluster = TotemCluster(node_ids, seed=seed, with_groups=True).start()
    cluster.run_until_stable(timeout=5.0)
    cluster.sim.run_for(0.2)  # let initial announces propagate
    return cluster


def payloads(cluster, node_id):
    return [m.payload for m in cluster.group_messages[node_id]]


def test_group_message_delivered_only_to_members():
    cluster = group_cluster(["n1", "n2", "n3"])
    cluster.groups["n1"].join("g")
    cluster.groups["n2"].join("g")
    cluster.sim.run_for(0.2)
    cluster.groups["n3"].send("g", "hello")
    cluster.sim.run_for(0.5)
    assert payloads(cluster, "n1") == ["hello"]
    assert payloads(cluster, "n2") == ["hello"]
    assert payloads(cluster, "n3") == []


def test_sender_need_not_be_member():
    cluster = group_cluster(["n1", "n2"])
    cluster.groups["n2"].join("g")
    cluster.sim.run_for(0.2)
    cluster.groups["n1"].send("g", "x")
    cluster.sim.run_for(0.5)
    assert payloads(cluster, "n2") == ["x"]


def test_multi_group_send_delivered_once_per_member():
    cluster = group_cluster(["n1", "n2", "n3"])
    cluster.groups["n1"].join("a")
    cluster.groups["n2"].join("b")
    cluster.groups["n3"].join("a")
    cluster.groups["n3"].join("b")
    cluster.sim.run_for(0.2)
    cluster.groups["n1"].send(("a", "b"), "both")
    cluster.sim.run_for(0.5)
    assert payloads(cluster, "n1") == ["both"]
    assert payloads(cluster, "n2") == ["both"]
    # n3 is in both target groups but the message is delivered once.
    assert payloads(cluster, "n3") == ["both"]


def test_total_order_across_groups():
    cluster = group_cluster(["n1", "n2", "n3"])
    for node_id in ("n1", "n2", "n3"):
        cluster.groups[node_id].join("a")
        cluster.groups[node_id].join("b")
    cluster.sim.run_for(0.2)
    for i in range(10):
        cluster.groups["n1"].send("a", ("a", i))
        cluster.groups["n2"].send("b", ("b", i))
    cluster.sim.run_for(1.0)
    assert payloads(cluster, "n1") == payloads(cluster, "n2") == payloads(cluster, "n3")
    assert len(payloads(cluster, "n1")) == 20


def test_views_reflect_joins():
    cluster = group_cluster(["n1", "n2", "n3"])
    cluster.groups["n1"].join("g")
    cluster.groups["n2"].join("g")
    cluster.sim.run_for(0.5)
    for node_id in ("n1", "n2", "n3"):
        assert cluster.groups[node_id].members_of("g") == ("n1", "n2")


def test_views_reflect_leaves():
    cluster = group_cluster(["n1", "n2"])
    cluster.groups["n1"].join("g")
    cluster.groups["n2"].join("g")
    cluster.sim.run_for(0.5)
    cluster.groups["n1"].leave("g")
    cluster.sim.run_for(0.5)
    assert cluster.groups["n2"].members_of("g") == ("n2",)
    views = [v for v in cluster.group_views["n2"] if v.group == "g"]
    assert views[-1].members == ("n2",)


def test_view_sequences_identical_across_members():
    cluster = group_cluster(["n1", "n2", "n3"])
    cluster.groups["n1"].join("g")
    cluster.groups["n2"].join("g")
    cluster.groups["n3"].join("g")
    cluster.sim.run_for(0.3)
    cluster.groups["n2"].leave("g")
    cluster.sim.run_for(0.5)
    histories = {}
    for node_id in ("n1", "n3"):
        histories[node_id] = [
            (v.view_seq, v.members)
            for v in cluster.group_views[node_id]
            if v.group == "g" and v.ring_key == cluster.groups[node_id].current_ring_key
        ]
    assert histories["n1"] == histories["n3"]


def test_view_change_on_member_crash():
    cluster = group_cluster(["n1", "n2", "n3"])
    for node_id in ("n1", "n2", "n3"):
        cluster.groups[node_id].join("g")
    cluster.sim.run_for(0.3)
    cluster.net.node("n3").crash()
    cluster.run_until_stable(timeout=5.0)
    cluster.sim.run_for(0.5)
    assert cluster.groups["n1"].members_of("g") == ("n1", "n2")
    assert cluster.groups["n2"].members_of("g") == ("n1", "n2")


def test_groups_reform_after_partition_and_remerge():
    cluster = group_cluster(["n1", "n2", "n3", "n4"])
    for node_id in ("n1", "n2", "n3", "n4"):
        cluster.groups[node_id].join("g")
    cluster.sim.run_for(0.3)
    cluster.net.partition([("n1", "n2"), ("n3", "n4")])
    cluster.run_until_stable(timeout=5.0)
    cluster.sim.run_for(0.5)
    assert cluster.groups["n1"].members_of("g") == ("n1", "n2")
    assert cluster.groups["n3"].members_of("g") == ("n3", "n4")
    cluster.net.merge()
    cluster.run_until_stable(timeout=5.0)
    cluster.sim.run_for(0.5)
    for node_id in ("n1", "n2", "n3", "n4"):
        assert cluster.groups[node_id].members_of("g") == ("n1", "n2", "n3", "n4")


def test_messages_to_group_cross_partition_only_within_component():
    cluster = group_cluster(["n1", "n2", "n3", "n4"])
    for node_id in ("n1", "n2", "n3", "n4"):
        cluster.groups[node_id].join("g")
    cluster.sim.run_for(0.3)
    cluster.net.partition([("n1", "n2"), ("n3", "n4")])
    cluster.run_until_stable(timeout=5.0)
    cluster.sim.run_for(0.3)
    cluster.groups["n1"].send("g", "left-only")
    cluster.sim.run_for(0.5)
    assert "left-only" in payloads(cluster, "n2")
    assert "left-only" not in payloads(cluster, "n3")
    assert "left-only" not in payloads(cluster, "n4")


def test_join_idempotent_and_leave_of_nonmember_noop():
    cluster = group_cluster(["n1", "n2"])
    cluster.groups["n1"].join("g")
    cluster.groups["n1"].join("g")
    cluster.groups["n2"].leave("g")
    cluster.sim.run_for(0.5)
    assert cluster.groups["n2"].members_of("g") == ("n1",)
