"""Unit tests for state capture, logging, and transfer mechanisms."""

import pytest

from repro.state import (
    BlockingTransfer,
    Checkpointable,
    FullStateCapture,
    IncrementalAssembler,
    IncrementalTransfer,
    MessageLog,
    StateImage,
    capture_full_state,
    restore_full_state,
    state_size_of,
)
from repro.workloads import Counter, KeyValueStore


def test_checkpointable_contract_enforced():
    class Incomplete(Checkpointable):
        pass

    with pytest.raises(NotImplementedError):
        Incomplete().get_state()
    with pytest.raises(NotImplementedError):
        Incomplete().set_state(None)


def test_state_size_of_servant_and_raw_value():
    counter = Counter(41)
    assert state_size_of(counter) == state_size_of(41)
    assert state_size_of("x" * 100) > state_size_of("x")


def test_blocking_transfer_round_trip():
    source = KeyValueStore()
    source.put("k", [1, 2, 3])
    data, size = BlockingTransfer.capture(source)
    assert size == len(data)
    sink = KeyValueStore()
    BlockingTransfer.apply(sink, data)
    assert sink.data == {"k": [1, 2, 3]}


def test_message_log_append_and_replay():
    log = MessageLog()
    log.append(("c", "g", 1), "increment", (1,))
    log.append(("c", "g", 2), "increment", (2,))
    records = log.replay_records()
    assert [r.operation_id for r in records] == [("c", "g", 1), ("c", "g", 2)]
    assert [r.position for r in records] == [1, 2]


def test_message_log_checkpoint_truncates():
    log = MessageLog()
    for i in range(5):
        log.append(("c", "g", i), "op", ())
    log.checkpoint({"value": 5})
    assert log.length == 0
    assert log.checkpoint_position == 5
    assert log.checkpoint_state == {"value": 5}
    log.append(("c", "g", 99), "op", ())
    assert [r.position for r in log.replay_records()] == [6]
    assert log.since(6) == []


def test_incremental_transfer_chunks_cover_snapshot():
    state = {"key-%d" % i: "v" * 50 for i in range(100)}
    transfer = IncrementalTransfer(state, chunk_size=512)
    assembler = IncrementalAssembler()
    count = 0
    for index, total, chunk in transfer.chunks():
        assert total == transfer.chunk_count()
        assembler.add_chunk(index, total, chunk)
        count += 1
    assert count == transfer.chunk_count() > 1
    assert assembler.complete()
    assert assembler.assemble() == state
    assert transfer.stats.chunk_bytes == len(transfer.snapshot)


def test_incremental_assembler_rejects_missing_chunks():
    transfer = IncrementalTransfer({"a": 1}, chunk_size=4)
    assembler = IncrementalAssembler()
    chunks = list(transfer.chunks())
    assembler.add_chunk(*chunks[0])
    assert not assembler.complete()
    with pytest.raises(ValueError):
        assembler.assemble()


def test_incremental_images_patch_torn_state():
    transfer = IncrementalTransfer({"a": 1, "b": 2}, chunk_size=1024)
    transfer.record_update("post", "a", 10)
    transfer.record_update("post", "c", 30)
    images = transfer.drain_images()
    assert transfer.images == []
    assembler = IncrementalAssembler()
    for chunk in transfer.chunks():
        assembler.add_chunk(*chunk)
    state = assembler.apply_images(assembler.assemble(), images)
    assert state == {"a": 10, "b": 2, "c": 30}
    assert assembler.patched_keys == ["a", "c"]


def test_pre_image_with_none_deletes_key():
    assembler = IncrementalAssembler()
    state = {"a": 1}
    image = StateImage("pre", "a", None, 1)
    assert assembler.apply_images(state, [image]) == {}


def test_state_image_validates_kind():
    with pytest.raises(ValueError):
        StateImage("mid", "k", 1, 1)
    with pytest.raises(ValueError):
        IncrementalTransfer({}, chunk_size=0)


def test_full_state_capture_round_trip():
    counter = Counter(7)
    capture = capture_full_state(
        counter, {"pending": 2}, {"dup_entries": 5}, position=12
    )
    value = capture.as_value()
    restored = FullStateCapture.from_value(value)
    assert restored.position == 12
    assert restored.orb == {"pending": 2}
    assert restored.infrastructure == {"dup_entries": 5}
    sink = Counter(0)
    orb_state, infra_state = restore_full_state(sink, restored)
    assert sink.value == 7
    assert orb_state == {"pending": 2}
    assert infra_state == {"dup_entries": 5}
    assert capture.size_bytes() > 0


def test_transfer_stats_accounting():
    transfer = IncrementalTransfer({"k": "v" * 1000}, chunk_size=256)
    list(transfer.chunks())
    transfer.record_update("post", "k2", "x")
    stats = transfer.stats
    assert stats.chunks == transfer.chunk_count()
    assert stats.images == 1
    assert stats.total_bytes == stats.chunk_bytes + stats.image_bytes
