"""Tests for the EternalSystem facade and simnet odds and ends."""

import pytest

from repro.core import EternalSystem
from repro.replication import GroupPolicy, ReplicationStyle
from repro.simnet import FaultPlan, Simulator
from repro.workloads import Counter


def test_add_node_after_start_joins_cluster():
    system = EternalSystem(["n1", "n2"]).start()
    system.stabilize()
    late = system.add_node("n3")
    late.processor.start()
    system.stabilize(timeout=10.0)
    assert late.processor.installed_ring.members == ("n1", "n2", "n3")


def test_states_of_excludes_dead_and_not_ready():
    system = EternalSystem(["n1", "n2", "n3"]).start()
    system.stabilize()
    system.create_replicated("ctr", Counter, ["n1", "n2"])
    system.run_for(0.5)
    system.crash("n2")
    states = system.states_of("ctr")
    assert list(states) == ["n1"]


def test_stabilize_timeout_raises():
    system = EternalSystem(["n1", "n2"]).start()
    # Immediately partition every node apart and crash one; then ask for a
    # very short stabilization while a node is mid-gather.
    system.crash("n2")
    system.recover("n2")
    with pytest.raises(TimeoutError):
        system.stabilize(timeout=0.0001, settle=0.0)


def test_call_timeout_raises():
    system = EternalSystem(["n1", "n2"]).start()
    system.stabilize()
    ior = system.create_replicated("ctr", Counter, ["n1"])
    system.run_for(0.3)
    system.crash("n1")
    stub = system.stub("n2", ior)
    with pytest.raises(TimeoutError):
        system.call(stub.read(), timeout=0.05)


def test_fault_plan_with_eternal_system():
    system = EternalSystem(["n1", "n2", "n3"]).start()
    system.stabilize()
    system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    now = system.sim.now
    plan = FaultPlan().crash(now + 1.0, "n3").recover(now + 2.0, "n3")
    plan.arm(system.net)
    system.sim.run_until(now + 1.5)
    assert not system.net.node("n3").alive
    system.sim.run_until(now + 2.5)
    assert system.net.node("n3").alive
    system.stabilize(timeout=10.0)


def test_engine_accessor_and_replicas_of():
    system = EternalSystem(["n1", "n2"]).start()
    system.stabilize()
    system.create_replicated("ctr", Counter, ["n1"])
    system.run_for(0.3)
    assert system.engine("n1").replica("ctr") is not None
    assert set(system.replicas_of("ctr")) == {"n1"}
    assert system.engine("n2").replica("ctr") is None


def test_deterministic_replay_of_whole_system():
    def run(seed):
        system = EternalSystem(["n1", "n2", "n3"], seed=seed).start()
        system.stabilize()
        ior = system.create_replicated(
            "ctr", Counter, ["n1", "n2", "n3"],
            GroupPolicy(style=ReplicationStyle.ACTIVE),
        )
        system.run_for(0.5)
        stub = system.stub("n1", ior)
        for _ in range(5):
            system.call(stub.increment(1))
        system.crash("n2")
        system.stabilize()
        system.call(stub.increment(1))
        return system.sim.now, dict(system.sim.trace.counters)

    assert run(42) == run(42)
    # (Note: with zero loss and jitter nothing stochastic happens, so
    # different seeds legitimately produce identical traces here; the
    # seed-sensitivity of lossy runs is covered in test_simnet_network.)


def test_simulator_emit_and_run_helpers():
    sim = Simulator(seed=1)
    sim.emit("custom", {"a": 1}, size=5)
    assert sim.trace.count("custom") == 1
    fired = []
    sim.schedule_at(1.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.5]
