"""Tests for the gateway serving unreplicated external clients."""

import zlib

import pytest

from repro.core import EternalSystem
from repro.gateway import Gateway, GatewayTier
from repro.orb import ORB, ApplicationError
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import BankAccount, Counter


def gateway_system(style=ReplicationStyle.ACTIVE, seed=0):
    # n1..n3 host replicas; gw participates in the domain as the gateway;
    # "outside" is a plain node running only an ORB (no Totem, no engine).
    system = EternalSystem(["n1", "n2", "n3", "gw"], seed=seed).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"], GroupPolicy(style=style)
    )
    system.run_for(0.5)
    gateway = Gateway(system.engine("gw"))
    exported = gateway.export(ior)
    outside_node = system.net.add_node("outside")
    outside_orb = ORB(system.net, outside_node)
    return system, gateway, exported, outside_orb


def test_external_client_invokes_replicated_object():
    system, gateway, exported, outside = gateway_system()
    stub = outside.stub(exported)
    assert system.call(stub.increment(4)) == 4
    assert system.call(stub.read()) == 4
    assert gateway.forwarded == 2
    assert set(system.states_of("ctr").values()) == {4}


def test_external_client_uses_plain_iiop_reference():
    system, gateway, exported, outside = gateway_system()
    assert not exported.is_group_reference()
    # The reference survives stringification like any CORBA IOR.
    stub = outside.stub(exported.to_string())
    assert system.call(stub.increment(1)) == 1


def test_gateway_with_passive_group():
    system, gateway, exported, outside = gateway_system(
        style=ReplicationStyle.WARM_PASSIVE
    )
    stub = outside.stub(exported)
    assert system.call(stub.increment(2)) == 2
    assert set(system.states_of("ctr").values()) == {2}


def test_gateway_survives_replica_crash():
    system, gateway, exported, outside = gateway_system()
    stub = outside.stub(exported)
    system.call(stub.increment(1))
    system.crash("n2")
    system.stabilize()
    assert system.call(stub.increment(1)) == 2


def test_gateway_relays_user_exceptions():
    system = EternalSystem(["n1", "n2", "gw"]).start()
    system.stabilize()
    ior = system.create_replicated(
        "acct", lambda: BankAccount("a", 5), ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    gateway = Gateway(system.engine("gw"))
    exported = gateway.export(ior)
    outside = ORB(system.net, system.net.add_node("outside"))
    stub = outside.stub(exported)
    with pytest.raises(ApplicationError) as excinfo:
        system.call(stub.withdraw(100))
    assert excinfo.value.exc_type == "InsufficientFunds"


def test_gateway_rejects_non_group_export():
    system = EternalSystem(["n1", "gw"]).start()
    system.stabilize()
    gateway = Gateway(system.engine("gw"))
    plain = system.nodes["n1"].orb.poa.activate(Counter())
    with pytest.raises(ValueError):
        gateway.export(plain)


def test_unknown_gateway_key_still_errors():
    system, gateway, exported, outside = gateway_system()
    from repro.orb.exceptions import ObjectNotExist
    from repro.orb.ior import IIOPProfile, IOR

    bogus = IOR("IDL:X:1.0", [IIOPProfile("gw", 683, "gateway:nope")])
    with pytest.raises(ObjectNotExist):
        system.call(outside.stub(bogus).read())


def test_forwarded_is_counter_backed():
    system, gateway, exported, outside = gateway_system()
    stub = outside.stub(exported)
    system.call(stub.increment(1))
    assert gateway.forwarded == 1
    assert system.telemetry.metrics.counter("gateway.forwarded").value == 1
    # It is a property over the metric, not a hand-rolled attribute.
    assert "forwarded" not in vars(gateway)


def test_reexport_replaces_binding_and_emits():
    system, gateway, exported, outside = gateway_system()
    assert system.sim.trace.count("gateway.export.replaced") == 0
    again = gateway.export(system.manager.ior_of("ctr"))
    assert system.sim.trace.count("gateway.export.replaced") == 1
    assert (again.iiop_profiles()[0].object_key
            == exported.iiop_profiles()[0].object_key)
    # A first-time export of a different group does not emit.
    other = system.create_replicated(
        "ctr2", Counter, ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    gateway.export(other)
    assert system.sim.trace.count("gateway.export.replaced") == 1


# ----------------------------------------------------------------------
# The replicated gateway tier
# ----------------------------------------------------------------------

def tier_system(seed=0):
    system = EternalSystem(
        ["n1", "n2", "n3", "gw1", "gw2"], seed=seed
    ).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    tier = GatewayTier("edge", [system.engine("gw1"), system.engine("gw2")])
    system.run_for(0.5)  # let the tier's client-group joins propagate
    exported = tier.export(ior)
    outside_orb = ORB(system.net, system.net.add_node("outside"))
    return system, tier, exported, outside_orb


def test_tier_exports_every_gateway_with_rotation():
    system, tier, exported, outside = tier_system()
    profiles = exported.iiop_profiles()
    assert sorted(p.host for p in profiles) == ["gw1", "gw2"]
    start = zlib.crc32(b"gateway:ctr") % 2
    assert profiles[0].host == ["gw1", "gw2"][start]
    stub = outside.stub(exported)
    assert system.call(stub.increment(2)) == 2
    assert set(system.states_of("ctr").values()) == {2}


def test_tier_reroutes_to_surviving_gateway_after_crash():
    """Kill the gateway the client is connected to: the next request is
    rerouted over the reference's remaining profile instead of failing."""
    system, tier, exported, outside = tier_system()
    primary = exported.iiop_profiles()[0].host
    stub = outside.stub(exported)
    assert system.call(stub.read()) == 0  # establishes the connection
    system.crash(primary)
    system.stabilize()
    failovers_before = system.sim.trace.count("orb.profile.failover")
    assert system.call(stub.increment(4), timeout=60.0) == 4
    assert system.sim.trace.count("orb.profile.failover") > failovers_before
    assert set(system.states_of("ctr").values()) == {4}


def test_tier_kill_midflight_reroutes_and_suppresses_duplicate():
    """Crash the gateway after it forwarded a request but before the reply
    reached the client: the rerouted retry carries the same operation id,
    so the domain executes the increment exactly once."""
    system, tier, exported, outside = tier_system()
    by_node = {g.orb.node_id: g for g in tier.gateways}
    primary = exported.iiop_profiles()[0].host
    stub = outside.stub(exported)
    assert system.call(stub.read()) == 0
    future = stub.increment(7)
    forwarded_before = by_node[primary]._forwarded_local
    for _ in range(2000):
        if by_node[primary]._forwarded_local > forwarded_before:
            break
        system.run_for(0.0001)
    assert by_node[primary]._forwarded_local > forwarded_before
    assert not future.done()
    system.crash(primary)
    system.stabilize()
    # A second request trips the dead connection's failure detection,
    # rerouting it and the in-flight increment to the surviving gateway.
    probe = stub.read()
    assert system.call(future, timeout=60.0) == 7
    assert system.call(probe, timeout=60.0) == 7
    # Exactly-once: the rerouted duplicate was suppressed domain-wide.
    assert set(system.states_of("ctr").values()) == {7}


def test_tier_survives_scheduled_gateway_kill_campaign():
    """A seeded chaos campaign kills each gateway in turn (with recovery)
    while the external client keeps invoking: every request lands exactly
    once via profile failover, and the tier ends fully converged."""
    from repro.chaos import CampaignSpec, ChaosCampaign, SimInjector

    system, tier, exported, outside = tier_system(seed=3)
    stub = outside.stub(exported)
    assert system.call(stub.read()) == 0  # establish a connection

    campaign = ChaosCampaign(CampaignSpec(
        nodes=["n1", "n2", "n3", "gw1", "gw2"], seed=11,
        start=0.5, duration=8.0,
        crashes=2, crash_targets=("gw1", "gw2"), downtime=(1.0, 2.0),
        partitions=0, loss_bursts=0, latency_spikes=0, slow_nodes=0,
        capabilities=("crash", "recover"),
    ))
    # The disjoint-slice layout guarantees the two kills never overlap,
    # so one gateway is always up to reroute to.
    kills = [e for e in campaign.events() if e.kind == "crash"]
    assert sorted(e.target for e in kills) == ["gw1", "gw2"]
    SimInjector(system.runtime).arm(campaign)

    sent = 0
    for _ in range(12):
        sent += 1
        assert system.call(stub.increment(1), timeout=60.0) == sent
        system.run_for(0.75)  # spread requests across the kill windows
    system.run_for(2.0)
    system.stabilize()
    assert system.call(stub.read(), timeout=60.0) == sent
    # Exactly-once survived both kills: no retry was double-executed.
    assert set(system.states_of("ctr").values()) == {sent}


def test_same_operation_id_executes_once_across_gateways():
    """Two gateway replicas forwarding the same logical request (same
    derived operation id) yield one execution and the same reply."""
    system, tier, exported, outside = tier_system()
    ior = system.manager.ior_of("ctr")
    op = ("g", tier.group, "outside", 1)
    first = system.engine("gw1").invoke_group(
        ior, "increment", (3,), operation_id=op, client_group=tier.group,
    )
    assert system.call(first) == 3
    second = system.engine("gw2").invoke_group(
        ior, "increment", (3,), operation_id=op, client_group=tier.group,
    )
    assert system.call(second) == 3
    assert set(system.states_of("ctr").values()) == {3}
