"""Tests for the gateway serving unreplicated external clients."""

import pytest

from repro.core import EternalSystem
from repro.gateway import Gateway
from repro.orb import ORB, ApplicationError
from repro.replication import GroupPolicy, ReplicationStyle
from repro.workloads import BankAccount, Counter


def gateway_system(style=ReplicationStyle.ACTIVE, seed=0):
    # n1..n3 host replicas; gw participates in the domain as the gateway;
    # "outside" is a plain node running only an ORB (no Totem, no engine).
    system = EternalSystem(["n1", "n2", "n3", "gw"], seed=seed).start()
    system.stabilize()
    ior = system.create_replicated(
        "ctr", Counter, ["n1", "n2", "n3"], GroupPolicy(style=style)
    )
    system.run_for(0.5)
    gateway = Gateway(system.engine("gw"))
    exported = gateway.export(ior)
    outside_node = system.net.add_node("outside")
    outside_orb = ORB(system.net, outside_node)
    return system, gateway, exported, outside_orb


def test_external_client_invokes_replicated_object():
    system, gateway, exported, outside = gateway_system()
    stub = outside.stub(exported)
    assert system.call(stub.increment(4)) == 4
    assert system.call(stub.read()) == 4
    assert gateway.forwarded == 2
    assert set(system.states_of("ctr").values()) == {4}


def test_external_client_uses_plain_iiop_reference():
    system, gateway, exported, outside = gateway_system()
    assert not exported.is_group_reference()
    # The reference survives stringification like any CORBA IOR.
    stub = outside.stub(exported.to_string())
    assert system.call(stub.increment(1)) == 1


def test_gateway_with_passive_group():
    system, gateway, exported, outside = gateway_system(
        style=ReplicationStyle.WARM_PASSIVE
    )
    stub = outside.stub(exported)
    assert system.call(stub.increment(2)) == 2
    assert set(system.states_of("ctr").values()) == {2}


def test_gateway_survives_replica_crash():
    system, gateway, exported, outside = gateway_system()
    stub = outside.stub(exported)
    system.call(stub.increment(1))
    system.crash("n2")
    system.stabilize()
    assert system.call(stub.increment(1)) == 2


def test_gateway_relays_user_exceptions():
    system = EternalSystem(["n1", "n2", "gw"]).start()
    system.stabilize()
    ior = system.create_replicated(
        "acct", lambda: BankAccount("a", 5), ["n1", "n2"],
        GroupPolicy(style=ReplicationStyle.ACTIVE),
    )
    system.run_for(0.5)
    gateway = Gateway(system.engine("gw"))
    exported = gateway.export(ior)
    outside = ORB(system.net, system.net.add_node("outside"))
    stub = outside.stub(exported)
    with pytest.raises(ApplicationError) as excinfo:
        system.call(stub.withdraw(100))
    assert excinfo.value.exc_type == "InsufficientFunds"


def test_gateway_rejects_non_group_export():
    system = EternalSystem(["n1", "gw"]).start()
    system.stabilize()
    gateway = Gateway(system.engine("gw"))
    plain = system.nodes["n1"].orb.poa.activate(Counter())
    with pytest.raises(ValueError):
        gateway.export(plain)


def test_unknown_gateway_key_still_errors():
    system, gateway, exported, outside = gateway_system()
    from repro.orb.exceptions import ObjectNotExist
    from repro.orb.ior import IIOPProfile, IOR

    bogus = IOR("IDL:X:1.0", [IIOPProfile("gw", 683, "gateway:nope")])
    with pytest.raises(ObjectNotExist):
        system.call(outside.stub(bogus).read())
