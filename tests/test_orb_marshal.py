"""Tests for CDR marshaling, GIOP encoding, and IOR stringification."""

import pytest

from repro.orb import (
    IOR,
    FTGroupProfile,
    IIOPProfile,
    InvObjref,
    MarshalError,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
    decode_value,
    encode_message,
    encode_value,
)
from repro.orb.giop import (
    CancelRequestMessage,
    CloseConnectionMessage,
    LocateReplyMessage,
    LocateRequestMessage,
)


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        False,
        0,
        -1,
        2 ** 62,
        -(2 ** 62),
        2 ** 100,          # big int path
        -(2 ** 100),
        3.14159,
        float("inf"),
        "",
        "hello",
        "unicode: é中文",
        b"",
        b"\x00\x01\xff",
        [],
        [1, "two", 3.0, None],
        (),
        (1, (2, (3,))),
        {},
        {"a": 1, "b": [True, None]},
        frozenset({1, 2, 3}),
        {"nested": {"deep": [{"x": (1, 2)}]}},
    ],
)
def test_cdr_round_trip(value):
    assert decode_value(encode_value(value)) == value


def test_cdr_preserves_list_tuple_distinction():
    assert decode_value(encode_value([1, 2])) == [1, 2]
    assert isinstance(decode_value(encode_value((1, 2))), tuple)
    assert isinstance(decode_value(encode_value([1, 2])), list)


def test_cdr_deterministic_dict_order():
    a = encode_value({"x": 1, "y": 2})
    b = encode_value({"y": 2, "x": 1})
    assert a == b


def test_cdr_rejects_non_string_dict_keys():
    with pytest.raises(MarshalError):
        encode_value({1: "x"})


def test_cdr_rejects_unknown_types():
    with pytest.raises(MarshalError):
        encode_value(object())


def test_cdr_rejects_trailing_bytes():
    data = encode_value(1) + b"\x00"
    with pytest.raises(MarshalError):
        decode_value(data)


def test_cdr_rejects_truncated_stream():
    data = encode_value("hello")[:-2]
    with pytest.raises(MarshalError):
        decode_value(data)


def test_giop_request_round_trip():
    request = RequestMessage(
        7, "POA/Counter/1", "increment", encode_value((5,)),
        response_expected=True,
        service_context={"FT_REQUEST": (1, 2, 3)},
    )
    decoded = decode_message(encode_message(request))
    assert isinstance(decoded, RequestMessage)
    assert decoded.request_id == 7
    assert decoded.object_key == "POA/Counter/1"
    assert decoded.operation == "increment"
    assert decoded.response_expected is True
    assert decoded.service_context == {"FT_REQUEST": (1, 2, 3)}
    assert decode_value(decoded.body) == (5,)


def test_giop_oneway_request_round_trip():
    request = RequestMessage(1, "k", "notify", encode_value(()), response_expected=False)
    decoded = decode_message(encode_message(request))
    assert decoded.response_expected is False


def test_giop_reply_round_trip():
    reply = ReplyMessage(9, ReplyStatus.USER_EXCEPTION, encode_value(("E", "boom")))
    decoded = decode_message(encode_message(reply))
    assert isinstance(decoded, ReplyMessage)
    assert decoded.request_id == 9
    assert decoded.status == ReplyStatus.USER_EXCEPTION
    assert decode_value(decoded.body) == ("E", "boom")


def test_giop_other_messages_round_trip():
    for message, cls in [
        (CancelRequestMessage(4), CancelRequestMessage),
        (LocateRequestMessage(5, "key"), LocateRequestMessage),
        (LocateReplyMessage(5, LocateReplyMessage.OBJECT_HERE), LocateReplyMessage),
        (CloseConnectionMessage(), CloseConnectionMessage),
    ]:
        decoded = decode_message(encode_message(message))
        assert isinstance(decoded, cls)


def test_giop_rejects_bad_magic():
    data = bytearray(encode_message(CloseConnectionMessage()))
    data[0:4] = b"XXXX"
    with pytest.raises(MarshalError):
        decode_message(bytes(data))


def test_giop_rejects_size_mismatch():
    data = encode_message(CancelRequestMessage(1)) + b"\x00"
    with pytest.raises(MarshalError):
        decode_message(data)


def test_ior_round_trip_iiop():
    ior = IOR("IDL:Counter:1.0", [IIOPProfile("n1", 683, "POA/Counter/1")])
    text = ior.to_string()
    assert text.startswith("IOR:")
    parsed = IOR.from_string(text)
    assert parsed == ior
    assert parsed.iiop_profiles()[0].object_key == "POA/Counter/1"
    assert not parsed.is_group_reference()


def test_ior_round_trip_group():
    ior = IOR(
        "IDL:Counter:1.0",
        [FTGroupProfile("domainA", "counter-group", 3),
         IIOPProfile("n1", 683, "k")],
    )
    parsed = IOR.from_string(ior.to_string())
    group = parsed.group_profile()
    assert group is not None
    assert group.group_name == "counter-group"
    assert group.version == 3
    assert parsed.is_group_reference()
    assert len(parsed.iiop_profiles()) == 1


def test_ior_rejects_garbage():
    with pytest.raises(InvObjref):
        IOR.from_string("not-an-ior")
    with pytest.raises(InvObjref):
        IOR.from_string("IOR:zzzz")
    with pytest.raises(InvObjref):
        IOR("IDL:X:1.0", [])
